package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrently running jobs (default GOMAXPROCS).
	Workers int
	// Parallelism bounds the concurrent flow evaluations inside one
	// ladder or sweep job (default Workers). The total goroutine load
	// is therefore at most Workers*Parallelism evaluations.
	Parallelism int
	// CacheEntries sizes the content-addressed result cache
	// (default 512; 0 keeps the default, negative disables caching).
	CacheEntries int
	// JobTimeout caps one job's wall clock (default 2 minutes).
	JobTimeout time.Duration
	// RegistryLimit bounds retained finished jobs for GET /v1/jobs/{id}
	// (default 1024); the oldest finished jobs are evicted first.
	RegistryLimit int
	// Metrics receives counters and latencies; nil allocates a private
	// set (retrievable via Pool.Metrics).
	Metrics *Metrics
}

// Pool is the job engine: a bounded worker pool over Run with a
// content-addressed cache, in-flight deduplication, per-job timeouts,
// and panic recovery. Do is synchronous — the caller's goroutine carries
// the job through a worker slot — so shutting down the HTTP server that
// fronts the pool drains it for free.
type Pool struct {
	opt     Options
	slots   chan struct{}
	cache   *Cache
	metrics *Metrics

	// runFn replaces Run in tests (nil means Run).
	runFn func(ctx context.Context, c Spec, parallelism int) (*Result, error)

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // FIFO of finished job ids, for registry eviction
	inflight map[string]*Job
}

// Job tracks one submission through the pool.
type Job struct {
	ID   string
	Spec Spec

	mu       sync.Mutex
	state    State
	err      string
	result   *Result
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// JobStatus is the JSON view of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID         string  `json:"id"`
	Kind       Kind    `json:"kind"`
	State      State   `json:"state"`
	Error      string  `json:"error,omitempty"`
	CreatedAt  string  `json:"created_at"`
	StartedAt  string  `json:"started_at,omitempty"`
	FinishedAt string  `json:"finished_at,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms,omitempty"`
	Result     *Result `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Kind:      j.Spec.Kind,
		State:     j.state,
		Error:     j.err,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Result:    j.result,
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		st.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return st
}

// Wait blocks until the job finishes or ctx is done, returning the
// result or the job's (or context's) error.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != "" {
		return nil, errors.New(j.err)
	}
	return j.result, nil
}

// NewPool builds a pool from opt, applying defaults.
func NewPool(opt Options) *Pool {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = opt.Workers
	}
	switch {
	case opt.CacheEntries == 0:
		opt.CacheEntries = 512
	case opt.CacheEntries < 0:
		opt.CacheEntries = 0
	}
	if opt.JobTimeout <= 0 {
		opt.JobTimeout = 2 * time.Minute
	}
	if opt.RegistryLimit <= 0 {
		opt.RegistryLimit = 1024
	}
	if opt.Metrics == nil {
		opt.Metrics = NewMetrics()
	}
	return &Pool{
		opt:      opt,
		slots:    make(chan struct{}, opt.Workers),
		cache:    NewCache(opt.CacheEntries),
		metrics:  opt.Metrics,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
}

// Metrics returns the pool's metrics set.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// Cache returns the pool's result cache.
func (p *Pool) Cache() *Cache { return p.cache }

// Workers reports the worker-slot count.
func (p *Pool) Workers() int { return p.opt.Workers }

// Lookup returns the tracked job with the given id (a canonical spec
// hash), if the registry still holds it.
func (p *Pool) Lookup(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Do executes the spec through the pool and returns its result: from the
// cache when an identical evaluation already ran, by joining an
// identical in-flight job when one is running, and otherwise by carrying
// the job through a worker slot with the pool's timeout and panic
// recovery. Do blocks; cancel ctx to give up waiting (the underlying
// computation stops at the next flow-stage boundary).
func (p *Pool) Do(ctx context.Context, s Spec) (*Result, error) {
	c, err := s.Canon()
	if err != nil {
		return nil, err
	}
	id := c.Hash()

	if res, ok := p.cache.Get(id); ok {
		p.metrics.CacheHits.Add(1)
		hit := res.shallowCopy()
		hit.Cached = true
		return hit, nil
	}
	p.metrics.CacheMisses.Add(1)

	p.mu.Lock()
	if j, ok := p.inflight[id]; ok {
		p.mu.Unlock()
		return j.Wait(ctx)
	}
	j := &Job{
		ID:      id,
		Spec:    c,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	p.inflight[id] = j
	p.registerLocked(j)
	p.mu.Unlock()

	// The submitting goroutine is the worker: acquire a slot.
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.finish(j, nil, ctx.Err())
		return nil, ctx.Err()
	}
	defer func() { <-p.slots }()

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	p.metrics.JobsStarted.Add(1)

	runCtx, cancel := context.WithTimeout(ctx, p.opt.JobTimeout)
	defer cancel()
	runCtx = core.WithStageObserver(runCtx, p.metrics.StageObserver())

	res, err := p.safeRun(runCtx, c)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			p.metrics.JobsTimedOut.Add(1)
			err = fmt.Errorf("jobs: job %s timed out after %v: %w", id[:12], p.opt.JobTimeout, err)
		}
		p.metrics.JobsFailed.Add(1)
		p.finish(j, nil, err)
		return nil, err
	}
	p.metrics.JobsCompleted.Add(1)
	p.metrics.Observe("job_"+string(c.Kind), time.Duration(res.ElapsedMS*float64(time.Millisecond)))
	p.cache.Put(id, res)
	p.finish(j, res, nil)
	return res, nil
}

// safeRun is Run behind a panic fence: a panicking flow evaluation fails
// its own job instead of taking down the service.
func (p *Pool) safeRun(ctx context.Context, c Spec) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.metrics.JobsPanicked.Add(1)
			err = fmt.Errorf("jobs: job panicked: %v\n%s", r, debug.Stack())
			res = nil
		}
	}()
	run := p.runFn
	if run == nil {
		run = Run
	}
	return run(ctx, c, p.opt.Parallelism)
}

// finish publishes the job's outcome and releases the in-flight slot.
func (p *Pool) finish(j *Job, res *Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.result = res
	}
	j.mu.Unlock()
	close(j.done)

	p.mu.Lock()
	delete(p.inflight, j.ID)
	p.finished = append(p.finished, j.ID)
	p.evictLocked()
	p.mu.Unlock()
}

// registerLocked adds the job to the registry. Caller holds p.mu.
func (p *Pool) registerLocked(j *Job) {
	p.jobs[j.ID] = j
}

// evictLocked trims the finished-job registry to the configured limit.
// Caller holds p.mu.
func (p *Pool) evictLocked() {
	for len(p.finished) > p.opt.RegistryLimit {
		id := p.finished[0]
		p.finished = p.finished[1:]
		// Only drop the registry entry if a newer job has not reused
		// the id (a re-run after cache eviction).
		if j, ok := p.jobs[id]; ok {
			j.mu.Lock()
			terminal := j.state == StateDone || j.state == StateFailed
			j.mu.Unlock()
			if terminal {
				if _, running := p.inflight[id]; !running {
					delete(p.jobs, id)
				}
			}
		}
	}
}
