package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrently running jobs (default GOMAXPROCS).
	Workers int
	// Parallelism bounds the concurrent flow evaluations inside one
	// ladder or sweep job (default Workers). The total goroutine load
	// is therefore at most Workers*Parallelism evaluations.
	Parallelism int
	// CacheEntries sizes the content-addressed result cache
	// (default 512; 0 keeps the default, negative disables caching).
	CacheEntries int
	// JobTimeout caps one attempt's wall clock (default 2 minutes).
	JobTimeout time.Duration
	// RegistryLimit bounds retained finished jobs for GET /v1/jobs/{id}
	// (default 1024); the oldest finished jobs are evicted first.
	RegistryLimit int
	// Metrics receives counters and latencies; nil allocates a private
	// set (retrievable via Pool.Metrics).
	Metrics *Metrics

	// MaxAttempts bounds runs of one job including retries of transient
	// failures (default 3; 1 disables retries).
	MaxAttempts int
	// RetryBase/RetryMax/RetryJitter shape the exponential backoff
	// between attempts (defaults 50ms / 2s / 0.25; a negative jitter
	// disables it). The backoff is served inside the job's worker
	// slot, so MaxAttempts*RetryMax bounds how long a slot can be held
	// by a failing job.
	RetryBase   time.Duration
	RetryMax    time.Duration
	RetryJitter float64
	// WatchdogGrace is how long past JobTimeout the watchdog waits for
	// a wedged attempt to honour cancellation before abandoning its
	// goroutine and failing the attempt (default 2s). Abandoned
	// goroutines park until the wedge releases; once more than Workers
	// are parked the pool fails watchdog errors fast instead of
	// retrying, bounding the goroutine pile-up a persistent stall can
	// build (see Pool.AbandonedInFlight).
	WatchdogGrace time.Duration
	// BreakerThreshold is the consecutive non-spec failures of one job
	// kind that trip its circuit breaker (default 5; negative
	// disables the breakers).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects jobs
	// before half-opening for a probe (default 10s).
	BreakerCooldown time.Duration
	// Journal, when set, write-ahead-logs accepted jobs (fsync before
	// run) and their outcomes, so a restart can recover pending work
	// and warm cache keys via RecoverFromJournal.
	Journal *Journal
	// Store, when set, adds a disk tier under the RAM cache: completed
	// results persist as content-addressed records, cache misses
	// consult the store before recomputing, and the store's admission
	// sketch gates RAM promotion (TinyLFU). With a store, the journal
	// records slim "stored" pointers instead of full result bodies.
	Store *cas.Store
	// Injector, when set, injects deterministic faults at the pool and
	// flow-stage seams (chaos testing).
	Injector *faultinject.Injector
}

// Pool is the job engine: a bounded worker pool over Run with a
// content-addressed cache, in-flight deduplication, per-job timeouts,
// and panic recovery. Do is synchronous — the caller's goroutine carries
// the job through a worker slot — so shutting down the HTTP server that
// fronts the pool drains it for free.
type Pool struct {
	opt     Options
	slots   chan struct{}
	cache   *Cache
	store   *cas.Store
	metrics *Metrics
	backoff *Backoff

	// breakers holds one circuit breaker per executable job kind; nil
	// when breakers are disabled.
	breakers map[Kind]*breaker

	// queued counts submissions waiting for a worker slot — the
	// admission-control signal the HTTP layer sheds on.
	queued atomic.Int64

	// abandoned counts watchdog-abandoned attempts whose goroutines are
	// still parked on whatever wedged them. Each holds working memory
	// beyond the Workers limit, so once more than Workers are parked
	// the pool stops retrying watchdog failures (fail fast) instead of
	// stacking concurrent evaluations of a wedged backend without bound.
	abandoned atomic.Int64

	// runFn replaces Run in tests (nil means Run).
	runFn func(ctx context.Context, c Spec, parallelism int) (*Result, error)

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // FIFO of finished job ids, for registry eviction
	inflight map[string]*Job

	// repair, when set (SetReadRepair), fetches a verified copy of a
	// locally corrupt/quarantined result from its replica set before Do
	// admits a recompute. Guarded by mu; read only on the cold corrupt
	// path.
	repair func(ctx context.Context, id string) (*Result, bool)
}

// Job tracks one submission through the pool.
type Job struct {
	ID   string
	Spec Spec

	mu       sync.Mutex
	state    State
	err      string
	result   *Result
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{}
}

// JobStatus is the JSON view of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID         string  `json:"id"`
	Kind       Kind    `json:"kind"`
	State      State   `json:"state"`
	Error      string  `json:"error,omitempty"`
	CreatedAt  string  `json:"created_at"`
	StartedAt  string  `json:"started_at,omitempty"`
	FinishedAt string  `json:"finished_at,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms,omitempty"`
	Result     *Result `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Kind:      j.Spec.Kind,
		State:     j.state,
		Error:     j.err,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Result:    j.result,
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		st.ElapsedMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	return st
}

// Wait blocks until the job finishes or ctx is done, returning the
// result or the job's (or context's) error.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != "" {
		//gaplint:allow errtaxonomy — j.err is a terminal failure re-read from its stored string form; its class was decided (and journaled) when the job failed
		return nil, errors.New(j.err)
	}
	return j.result, nil
}

// NewPool builds a pool from opt, applying defaults.
func NewPool(opt Options) *Pool {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = opt.Workers
	}
	switch {
	case opt.CacheEntries == 0:
		opt.CacheEntries = 512
	case opt.CacheEntries < 0:
		opt.CacheEntries = 0
	}
	if opt.JobTimeout <= 0 {
		opt.JobTimeout = 2 * time.Minute
	}
	if opt.RegistryLimit <= 0 {
		opt.RegistryLimit = 1024
	}
	if opt.Metrics == nil {
		opt.Metrics = NewMetrics()
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 3
	}
	if opt.WatchdogGrace <= 0 {
		opt.WatchdogGrace = 2 * time.Second
	}
	switch {
	case opt.BreakerThreshold == 0:
		opt.BreakerThreshold = 5
	case opt.BreakerThreshold < 0:
		opt.BreakerThreshold = 0 // disabled
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = 10 * time.Second
	}
	p := &Pool{
		opt:      opt,
		slots:    make(chan struct{}, opt.Workers),
		cache:    NewCache(opt.CacheEntries),
		store:    opt.Store,
		metrics:  opt.Metrics,
		backoff:  NewBackoff(opt.RetryBase, opt.RetryMax, opt.RetryJitter, 1),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if p.store != nil {
		// RAM promotion is TinyLFU-gated: a candidate displaces the LRU
		// victim only when the store's frequency sketch rates it at
		// least as hot, so a scan over cold keys cannot flush the
		// working set out of RAM.
		p.cache.SetAdmission(p.store.Admit)
	}
	if opt.BreakerThreshold > 0 {
		p.breakers = map[Kind]*breaker{
			KindEvaluate: newBreaker(opt.BreakerThreshold, opt.BreakerCooldown),
			KindLadder:   newBreaker(opt.BreakerThreshold, opt.BreakerCooldown),
			KindSweep:    newBreaker(opt.BreakerThreshold, opt.BreakerCooldown),
		}
	}
	return p
}

// Metrics returns the pool's metrics set.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// Cache returns the pool's result cache.
func (p *Pool) Cache() *Cache { return p.cache }

// Workers reports the worker-slot count.
func (p *Pool) Workers() int { return p.opt.Workers }

// Lookup returns the tracked job with the given id (a canonical spec
// hash), if the registry still holds it.
func (p *Pool) Lookup(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Do executes the spec through the pool and returns its result: from the
// cache when an identical evaluation already ran, by joining an
// identical in-flight job when one is running, and otherwise by carrying
// the job through a worker slot with the pool's per-attempt timeout and
// watchdog, panic recovery, and bounded retries of transient failures.
// Do blocks; cancel ctx to give up waiting (the underlying computation
// stops at the next flow-stage boundary).
//
// Failure handling: errors are classified (Classify) into transient /
// spec / canceled / fatal. Transient failures retry with exponential
// backoff up to Options.MaxAttempts; non-spec failures feed the job
// kind's circuit breaker, and an open breaker rejects submissions with
// ErrBreakerOpen before any work runs. The cache only ever stores fully
// successful results — a failed job leaves no cache entry.
func (p *Pool) Do(ctx context.Context, s Spec) (*Result, error) {
	c, err := s.Canon()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	id := c.Hash()

	// Tiered lookup: RAM cache, then the disk store, then compute. The
	// sketch touch records this access's frequency whichever tier
	// answers — it is what admission and budget eviction rank on.
	lookupStart := time.Now()
	if p.store != nil {
		p.store.Touch(id)
	}
	if res, ok := p.cache.Get(id); ok {
		p.metrics.CacheHits.Add(1)
		p.metrics.Observe("tier_hit_ram", time.Since(lookupStart))
		hit := res.shallowCopy()
		hit.Cached = true
		hit.Service = p.metrics.ServiceCounters()
		return hit, nil
	}
	p.metrics.CacheMisses.Add(1)
	if p.store != nil {
		res, rerr := p.storeGetE(id)
		if rerr == nil {
			p.metrics.CASHits.Add(1)
			p.metrics.Observe("tier_hit_cas", time.Since(lookupStart))
			// Promote to RAM (admission-gated) so a second hit is a RAM
			// hit; the stored body stays the durable copy either way.
			p.cache.Put(id, res)
			hit := res.shallowCopy()
			hit.Cached = true
			hit.Service = p.metrics.ServiceCounters()
			return hit, nil
		}
		if p.probeCorrupt(rerr, id) {
			// The record existed and rotted (or is still quarantined
			// from a scrub). Never served; before admitting a recompute,
			// try to repair from the replica set.
			p.metrics.CASCorruptReads.Add(1)
			if res, ok := p.readRepair(ctx, id); ok {
				p.metrics.Observe("tier_hit_repair", time.Since(lookupStart))
				hit := res.shallowCopy()
				hit.Cached = true
				hit.Service = p.metrics.ServiceCounters()
				return hit, nil
			}
		}
		p.metrics.CASMisses.Add(1)
	}

	// An open breaker rejects the kind before any state is created. If
	// this submission took the half-open probe slot, it must end the
	// probe on every exit path: record feeds an outcome to the breaker,
	// and the deferred Release frees a probe that reached an exit with
	// no recordable outcome (joined an in-flight twin, caller hung up,
	// spec error, simulated kill) — otherwise the breaker would stay
	// half-open with the probe slot taken and reject the kind forever.
	br := p.breakerFor(c.Kind)
	probe := false
	if br != nil {
		allowed, pr := br.Allow(time.Now())
		if !allowed {
			p.metrics.BreakerShortCircuits.Add(1)
			return nil, fmt.Errorf("%w (kind %s)", ErrBreakerOpen, c.Kind)
		}
		probe = pr
		defer func() {
			if probe {
				br.Release()
			}
		}()
	}
	record := func(ok bool) (tripped bool) {
		probe = false
		return br.Record(ok, time.Now())
	}

	p.mu.Lock()
	if j, ok := p.inflight[id]; ok {
		p.mu.Unlock()
		return j.Wait(ctx)
	}
	j := &Job{
		ID:      id,
		Spec:    c,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	p.inflight[id] = j
	p.registerLocked(j)
	p.mu.Unlock()

	// Write-ahead: once accepted (fsynced), the job survives a process
	// kill and a restart will recover it from the journal.
	p.journalAccept(id, c)

	// The submitting goroutine is the worker: acquire a slot.
	p.queued.Add(1)
	select {
	case p.slots <- struct{}{}:
		p.queued.Add(-1)
	case <-ctx.Done():
		p.queued.Add(-1)
		p.journalFail(id, ctx.Err(), ClassCanceled)
		p.finish(j, nil, ctx.Err())
		return nil, ctx.Err()
	}
	defer func() { <-p.slots }()

	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	p.metrics.JobsStarted.Add(1)

	for attempt := 0; ; attempt++ {
		res, err := p.runAttempt(ctx, c, id, attempt)
		if err == nil {
			if br != nil {
				record(true)
			}
			res.Attempts = attempt + 1
			res.Service = p.metrics.ServiceCounters()
			p.metrics.JobsCompleted.Add(1)
			p.metrics.Observe("job_"+string(c.Kind), time.Duration(res.ElapsedMS*float64(time.Millisecond)))
			p.cache.Put(id, res)
			p.persistResult(id, res)
			p.finish(j, res, nil)
			return res, nil
		}

		if errors.Is(err, context.DeadlineExceeded) {
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				// The caller's own deadline expired, not the attempt's:
				// the caller gave up, the job did not time out.
				err = fmt.Errorf("jobs: job %s abandoned at the caller's deadline: %w", id[:12], err)
			} else {
				p.metrics.JobsTimedOut.Add(1)
				err = fmt.Errorf("jobs: job %s timed out after %v: %w", id[:12], p.opt.JobTimeout, err)
			}
		}
		class := Classify(ctx, err)
		if class.Retryable() && errors.Is(err, ErrWatchdog) && p.abandoned.Load() > int64(p.opt.Workers) {
			// Too many abandoned goroutines are already parked: a retry
			// would stack yet another concurrent evaluation on a wedged
			// backend. Fail fast (and let the breaker see it) instead.
			err = fmt.Errorf("jobs: %d watchdog-abandoned attempts still parked (cap %d), not retrying: %w",
				p.abandoned.Load(), p.opt.Workers, err)
			class = ClassFatal
		}
		if class.Retryable() && attempt+1 < p.opt.MaxAttempts && ctx.Err() == nil {
			p.metrics.JobsRetried.Add(1)
			if serr := p.backoff.Sleep(ctx, attempt); serr == nil {
				continue
			}
			// The caller hung up mid-backoff.
			err = fmt.Errorf("jobs: job %s canceled during retry backoff: %w", id[:12], ctx.Err())
			class = ClassCanceled
		}
		// Only the job's terminal outcome feeds the breaker — a job
		// that retried its way to success is a success, and spec
		// errors, caller cancellations, and simulated process kills are
		// not failures of the kind.
		if br != nil && (class == ClassTransient || class == ClassFatal) && !errors.Is(err, ErrKilled) {
			if record(false) {
				p.metrics.BreakerTrips.Add(1)
			}
		}
		p.metrics.JobsFailed.Add(1)
		err = fmt.Errorf("jobs: job %s failed (%s, attempt %d/%d): %w",
			id[:12], class, attempt+1, p.opt.MaxAttempts, err)
		if !errors.Is(err, ErrKilled) {
			// A simulated kill must leave no terminal record — that is
			// exactly the crash signature the journal replay recovers.
			p.journalFail(id, err, class)
		}
		p.finish(j, nil, err)
		return nil, err
	}
}

// runAttempt executes one attempt of the job with the pool's timeout,
// watchdog, panic fence, and fault-injection seams. The pool seam's
// fault site is keyed "pool/<kind>/<hash12>/a<attempt>"; stage seams
// append "/<stage>" via the injected stage hook, so every (job,
// attempt, stage) draws an independent, deterministic fault.
func (p *Pool) runAttempt(ctx context.Context, c Spec, id string, attempt int) (*Result, error) {
	attemptKey := fmt.Sprintf("%s/%s/a%d", c.Kind, id[:12], attempt)
	poolKey := ""
	if in := p.opt.Injector; in != nil {
		poolKey = "pool/" + attemptKey
		if in.Decide(poolKey) == faultinject.Kill {
			in.Kills.Add(1)
			return nil, fmt.Errorf("%w (injected at %s)", ErrKilled, poolKey)
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, p.opt.JobTimeout)
	defer cancel()
	runCtx = core.WithStageObserver(runCtx, p.metrics.StageObserver())
	if in := p.opt.Injector; in != nil {
		runCtx = faultinject.WithAttemptKey(runCtx, attemptKey)
		runCtx = core.WithStageHook(runCtx, in.StageHook())
	}

	// The attempt runs on its own goroutine so the watchdog can reclaim
	// the worker slot from an evaluation that ignores its deadline. A
	// cooperative attempt returns through outcome; a wedged one is
	// abandoned (its goroutine parks until whatever wedged it lets go —
	// the panic fence still contains it) and the attempt fails with
	// ErrWatchdog, which is transient and therefore requeued while
	// retry budget remains.
	type outcome struct {
		res *Result
		err error
	}
	out := make(chan outcome, 1)
	// settled decides the race between the attempt finishing and the
	// watchdog firing: whoever wins the CAS owns the outcome. A losing
	// attempt goroutine was abandoned — it decrements the parked-attempt
	// gauge the watchdog incremented, once the wedge finally lets go.
	var settled atomic.Bool
	go func() {
		res, err := p.safeRun(runCtx, poolKey, c)
		out <- outcome{res, err}
		if !settled.CompareAndSwap(false, true) {
			p.abandoned.Add(-1)
		}
	}()

	wd := time.NewTimer(p.opt.JobTimeout + p.opt.WatchdogGrace)
	defer wd.Stop()
	select {
	case o := <-out:
		return o.res, o.err
	case <-wd.C:
		if !settled.CompareAndSwap(false, true) {
			// The attempt finished in the same instant the timer fired.
			o := <-out
			return o.res, o.err
		}
		p.abandoned.Add(1)
		p.metrics.JobsAbandoned.Add(1)
		return nil, fmt.Errorf("%w: job %s attempt %d ignored its %v deadline for %v",
			ErrWatchdog, id[:12], attempt+1, p.opt.JobTimeout, p.opt.WatchdogGrace)
	}
}

// safeRun is Run behind a panic fence: a panicking flow evaluation fails
// its own attempt with a typed, retryable error instead of taking down
// the service. The pool-level fault seam fires here — inside the fence
// and under the watchdog — so injected panics are contained and injected
// stalls are reclaimed like any other wedged attempt.
func (p *Pool) safeRun(ctx context.Context, poolKey string, c Spec) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.metrics.JobsPanicked.Add(1)
			err = fmt.Errorf("%w: %v\n%s", ErrPanicked, r, debug.Stack())
			res = nil
		}
	}()
	if in := p.opt.Injector; in != nil && poolKey != "" {
		if err := in.Fire(ctx, poolKey); err != nil {
			return nil, err
		}
	}
	run := p.runFn
	if run == nil {
		run = Run
	}
	return run(ctx, c, p.opt.Parallelism)
}

// StoreResult installs a result computed elsewhere — a replication
// write from a cluster peer — into this node's cache and journal, after
// verifying its integrity: the payload's canonical spec must hash to
// the claimed content address, so a corrupted or mislabeled replica can
// never poison the cache with a wrong answer under a right key
// (failures wrap ErrBadReplica). It reports whether the result was new
// here (false means an identical entry already existed — the
// anti-entropy no-op). Stored results are journaled as done records,
// so a replica survives the replica-holder's own restart.
func (p *Pool) StoreResult(res *Result) (created bool, err error) {
	if res == nil || res.ID == "" {
		return false, fmt.Errorf("%w: empty result", ErrBadReplica)
	}
	canon, cerr := res.Spec.Canon()
	if cerr != nil {
		return false, fmt.Errorf("%w: spec does not canonicalize: %v", ErrBadReplica, cerr)
	}
	if canon.Hash() != res.ID {
		return false, fmt.Errorf("%w: spec hashes to %s, claimed id %s",
			ErrBadReplica, canon.Hash()[:12], res.ID[:min(12, len(res.ID))])
	}
	if _, ok := p.cache.Get(res.ID); ok {
		return false, nil
	}
	if p.store != nil && p.store.Has(res.ID) {
		return false, nil
	}
	// Store an envelope scrubbed of the origin's run bookkeeping: the
	// replica serves the deterministic content; Cached/Attempts/Service
	// are per-serving-node facts.
	cp := res.Normalized()
	p.cache.Put(cp.ID, cp)
	p.persistResult(cp.ID, cp)
	p.metrics.ReplicasStored.Add(1)
	return true, nil
}

// breakerFor returns the kind's circuit breaker, or nil when disabled.
func (p *Pool) breakerFor(kind Kind) *breaker {
	if p.breakers == nil {
		return nil
	}
	return p.breakers[kind]
}

// BreakerOpen reports whether any job kind's breaker is currently open
// (the /healthz degradation signal), and which kinds.
func (p *Pool) BreakerOpen() (open bool, kinds []Kind) {
	for _, kind := range []Kind{KindEvaluate, KindLadder, KindSweep} {
		if b := p.breakerFor(kind); b != nil && b.State() == breakerOpen {
			open = true
			kinds = append(kinds, kind)
		}
	}
	return open, kinds
}

// BreakerStates snapshots every breaker's state for /metrics.
func (p *Pool) BreakerStates() map[string]string {
	states := map[string]string{}
	for _, kind := range []Kind{KindEvaluate, KindLadder, KindSweep} {
		if b := p.breakerFor(kind); b != nil {
			states[string(kind)] = string(b.State())
		}
	}
	return states
}

// QueueDepth reports submissions waiting for a worker slot — the load
// signal admission control sheds on.
func (p *Pool) QueueDepth() int { return int(p.queued.Load()) }

// AbandonedInFlight reports watchdog-abandoned attempts whose goroutines
// are still parked on whatever wedged them — an operator alert signal:
// a persistently nonzero value means evaluations are ignoring
// cancellation. Once it exceeds Workers the pool stops retrying
// watchdog failures and fails them fast instead.
func (p *Pool) AbandonedInFlight() int { return int(p.abandoned.Load()) }

// InFlight reports jobs accepted but not yet finished (queued or
// running).
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inflight)
}

// Journal returns the pool's journal, or nil.
func (p *Pool) Journal() *Journal { return p.opt.Journal }

// journalAccept write-ahead-logs an accepted job; a failed write counts
// as a journal error and degrades health, but never blocks the job.
func (p *Pool) journalAccept(id string, c Spec) {
	j := p.opt.Journal
	if j == nil {
		return
	}
	if err := j.Accept(id, c); err != nil {
		p.metrics.JournalErrors.Add(1)
		return
	}
	p.metrics.JournalAccepted.Add(1)
}

// journalDone records a completed job with its result.
func (p *Pool) journalDone(id string, res *Result) {
	j := p.opt.Journal
	if j == nil {
		return
	}
	if err := j.Done(id, res); err != nil {
		p.metrics.JournalErrors.Add(1)
		return
	}
	p.metrics.JournalCompleted.Add(1)
}

// journalStored records that a job's result is durable in the CAS
// store — a slim pointer instead of a done record with the full body.
// The record is unsynced: the CAS write it points at already fsynced,
// and recovery checks the store before re-running a pending accept, so
// losing the pointer costs an index lookup, never a recompute.
func (p *Pool) journalStored(id string) {
	j := p.opt.Journal
	if j == nil {
		return
	}
	if err := j.Stored(id); err != nil {
		p.metrics.JournalErrors.Add(1)
		return
	}
	p.metrics.JournalStored.Add(1)
}

// journalFail closes out a terminally failed job.
func (p *Pool) journalFail(id string, err error, class Class) {
	j := p.opt.Journal
	if j == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	if jerr := j.Fail(id, msg, class); jerr != nil {
		p.metrics.JournalErrors.Add(1)
		return
	}
	p.metrics.JournalFailed.Add(1)
}

// finish publishes the job's outcome and releases the in-flight slot.
func (p *Pool) finish(j *Job, res *Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	if err != nil {
		j.state = StateFailed
		j.err = err.Error()
	} else {
		j.state = StateDone
		j.result = res
	}
	j.mu.Unlock()
	close(j.done)

	p.mu.Lock()
	delete(p.inflight, j.ID)
	p.finished = append(p.finished, j.ID)
	p.evictLocked()
	p.mu.Unlock()
}

// registerLocked adds the job to the registry. Caller holds p.mu.
func (p *Pool) registerLocked(j *Job) {
	p.jobs[j.ID] = j
}

// evictLocked trims the finished-job registry to the configured limit.
// Caller holds p.mu.
func (p *Pool) evictLocked() {
	for len(p.finished) > p.opt.RegistryLimit {
		id := p.finished[0]
		p.finished = p.finished[1:]
		// Only drop the registry entry if a newer job has not reused
		// the id (a re-run after cache eviction).
		if j, ok := p.jobs[id]; ok {
			j.mu.Lock()
			terminal := j.state == StateDone || j.state == StateFailed
			j.mu.Unlock()
			if terminal {
				if _, running := p.inflight[id]; !running {
					delete(p.jobs, id)
				}
			}
		}
	}
}
