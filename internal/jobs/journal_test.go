package jobs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	specA, _ := smallEval(1).Canon()
	specB, _ := smallEval(2).Canon()
	specC, _ := smallEval(3).Canon()
	resA := &Result{ID: specA.Hash(), Kind: specA.Kind, Spec: specA}

	if err := j.Accept(specA.Hash(), specA); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept(specB.Hash(), specB); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept(specC.Hash(), specC); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(specA.Hash(), resA); err != nil {
		t.Fatal(err)
	}
	if err := j.Fail(specC.Hash(), "spec rot", ClassSpec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 1 || rep.Completed[0].ID != specA.Hash() {
		t.Errorf("completed = %+v", rep.Completed)
	}
	if len(rep.Pending) != 1 || rep.Pending[0].Hash() != specB.Hash() {
		t.Errorf("pending = %+v", rep.Pending)
	}
	if rep.Failed != 1 {
		t.Errorf("failed = %d", rep.Failed)
	}
	if rep.Truncated {
		t.Error("clean journal reported truncation")
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line;
// replay must keep everything before it and report the truncation
// instead of failing.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := smallEval(1).Canon()
	if err := j.Accept(spec.Hash(), spec); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"abc","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("torn tail not reported")
	}
	if len(rep.Pending) != 1 {
		t.Errorf("pending = %d, want the record before the torn line", len(rep.Pending))
	}
}

func TestJournalMissingDirIsEmpty(t *testing.T) {
	rep, err := ReplayJournal(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending)+len(rep.Completed)+rep.Failed != 0 {
		t.Errorf("replay of absent journal = %+v", rep)
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	specA, _ := smallEval(1).Canon()
	specB, _ := smallEval(2).Canon()
	resA := &Result{ID: specA.Hash(), Kind: specA.Kind, Spec: specA}
	j.Accept(specA.Hash(), specA)
	j.Accept(specB.Hash(), specB)
	j.Done(specA.Hash(), resA)
	j.Fail(specB.Hash(), "gone", ClassFatal)

	if err := j.Compact([]*Result{resA}, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 1 || len(rep.Pending) != 0 || rep.Failed != 0 {
		t.Errorf("after compact: %+v", rep)
	}

	// The compacted journal must still accept appends.
	specC, _ := smallEval(3).Canon()
	if err := j.Accept(specC.Hash(), specC); err != nil {
		t.Fatal(err)
	}
	rep, _ = ReplayJournal(dir)
	if len(rep.Pending) != 1 {
		t.Errorf("append after compact lost: %+v", rep)
	}
}

// TestJournalCompactNow drives the SIGHUP path: on-demand compaction of
// a live journal must shrink the file, keep one done record per
// completed job, preserve pending accepts — repeated per replay
// generation, so the poison-job marker survives — drop terminal-failure
// history, report accurate stats, and leave the journal appendable.
func TestJournalCompactNow(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	done, _ := smallEval(1).Canon()
	pending, _ := smallEval(2).Canon()
	failed, _ := smallEval(3).Canon()
	resDone := &Result{ID: done.Hash(), Kind: done.Kind, Spec: done}

	// A noisy history: duplicate accepts for the completed job, two boot
	// generations for the pending one, and a terminal failure.
	j.Accept(done.Hash(), done)
	j.Accept(done.Hash(), done)
	j.Done(done.Hash(), resDone)
	j.Accept(pending.Hash(), pending)
	j.Accept(pending.Hash(), pending)
	j.Accept(failed.Hash(), failed)
	j.Fail(failed.Hash(), "rotten", ClassFatal)

	st, err := j.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || st.PendingKept != 1 || st.DroppedFailed != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BeforeBytes <= st.AfterBytes || st.AfterBytes <= 0 {
		t.Errorf("compaction did not shrink: %d -> %d bytes", st.BeforeBytes, st.AfterBytes)
	}

	rep, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 1 || rep.Completed[0].ID != done.Hash() {
		t.Errorf("completed after compaction = %+v", rep.Completed)
	}
	if len(rep.Pending) != 1 || rep.Pending[0].Hash() != pending.Hash() {
		t.Errorf("pending after compaction = %+v", rep.Pending)
	}
	if rep.PendingAccepts[0] != 2 {
		t.Errorf("pending accept generations = %d, want 2 preserved", rep.PendingAccepts[0])
	}
	if rep.Failed != 0 {
		t.Errorf("failure history survived compaction: %d", rep.Failed)
	}

	// Still a live journal: appends keep landing after the rewrite.
	extra, _ := smallEval(4).Canon()
	if err := j.Accept(extra.Hash(), extra); err != nil {
		t.Fatal(err)
	}
	rep, _ = ReplayJournal(dir)
	if len(rep.Pending) != 2 {
		t.Errorf("append after CompactNow lost: %+v", rep)
	}

	// Nil receiver (no -journal configured) is a no-op, matching the
	// SIGHUP handler's unconditional call shape.
	var nilJ *Journal
	if _, err := nilJ.CompactNow(); err != nil {
		t.Errorf("nil CompactNow: %v", err)
	}
}

// TestJournalUnwritableDegrades: a journal whose file has been closed
// under it reports unhealthy (the /healthz degradation signal) but the
// pool keeps executing jobs.
func TestJournalUnwritableDegrades(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Healthy() {
		t.Fatal("fresh journal unhealthy")
	}
	j.Close()
	spec, _ := smallEval(1).Canon()
	if err := j.Accept(spec.Hash(), spec); err == nil {
		t.Fatal("append to closed journal succeeded")
	}
	if j.Healthy() {
		t.Error("failed append left journal healthy")
	}

	p := NewPool(Options{Workers: 1, Journal: j})
	res, err := p.Do(context.Background(), smallEval(1))
	if err != nil || res == nil {
		t.Fatalf("pool stopped serving on journal failure: %v", err)
	}
	if p.Metrics().JournalErrors.Load() == 0 {
		t.Error("journal errors not counted")
	}
}

// TestRecoveryFailsPoisonJobsTerminally: a pending job whose accept
// count shows it has already been replayed MaxReplayGenerations times is
// the crash-loop signature (it hard-kills the process on every boot, so
// no terminal record ever lands). Recovery must fail it terminally and
// move on instead of re-executing it forever.
func TestRecoveryFailsPoisonJobsTerminally(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	poison, _ := smallEval(1).Canon()
	healthy, _ := smallEval(2).Canon()
	// One accept per boot generation: the original plus
	// MaxReplayGenerations replays, none of which reached a terminal
	// record.
	for i := 0; i <= MaxReplayGenerations; i++ {
		if err := j.Accept(poison.Hash(), poison); err != nil {
			t.Fatal(err)
		}
	}
	// A job one generation younger must still be replayed.
	for i := 0; i < MaxReplayGenerations; i++ {
		if err := j.Accept(healthy.Hash(), healthy); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	p := NewPool(Options{Workers: 1, Journal: j2})
	ran := map[string]int{}
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		ran[c.Hash()]++
		return &Result{ID: c.Hash(), Kind: c.Kind, Spec: c}, nil
	}
	stats, err := RecoverFromJournal(context.Background(), p, dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplaysExhausted != 1 {
		t.Errorf("replays exhausted = %d, want 1", stats.ReplaysExhausted)
	}
	if stats.Resubmitted != 1 {
		t.Errorf("resubmitted = %d, want only the healthy job", stats.Resubmitted)
	}
	if ran[poison.Hash()] != 0 {
		t.Errorf("poison job re-executed %d times", ran[poison.Hash()])
	}
	if ran[healthy.Hash()] != 1 {
		t.Errorf("healthy job ran %d times, want 1", ran[healthy.Hash()])
	}
	if got := p.Metrics().JournalReplaysExhausted.Load(); got != 1 {
		t.Errorf("replays_exhausted metric = %d", got)
	}

	// The verdict converges: the next boot sees nothing pending — the
	// poison job is terminal, the healthy one completed.
	rep, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 0 {
		t.Errorf("post-recovery journal still has %d pending jobs", len(rep.Pending))
	}
}

// TestReplayCountsAcceptGenerations: ReplayJournal reports one accept
// per boot generation for pending jobs, the marker the poison cap keys
// on.
func TestReplayCountsAcceptGenerations(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := smallEval(1).Canon()
	j.Accept(spec.Hash(), spec)
	j.Accept(spec.Hash(), spec)
	j.Close()

	rep, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 1 || len(rep.PendingAccepts) != 1 {
		t.Fatalf("pending = %d, accepts = %d", len(rep.Pending), len(rep.PendingAccepts))
	}
	if rep.PendingAccepts[0] != 2 {
		t.Errorf("accept generations = %d, want 2", rep.PendingAccepts[0])
	}
}

// TestPoolJournalsLifecycle: accepted and completed jobs land in the
// journal with enough to recover: the accept's canonical spec and the
// done's full result.
func TestPoolJournalsLifecycle(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	p := NewPool(Options{Workers: 1, Journal: j})
	res, err := p.Do(context.Background(), smallEval(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completed) != 1 || rep.Completed[0].ID != res.ID {
		t.Fatalf("journal completed = %+v", rep.Completed)
	}
	if rep.Completed[0].Evaluation == nil ||
		rep.Completed[0].Evaluation.ShippedMHz != res.Evaluation.ShippedMHz {
		t.Error("journal result payload does not match the served result")
	}
	if p.Metrics().JournalAccepted.Load() != 1 || p.Metrics().JournalCompleted.Load() != 1 {
		t.Errorf("journal counters: accepted=%d completed=%d",
			p.Metrics().JournalAccepted.Load(), p.Metrics().JournalCompleted.Load())
	}
}
