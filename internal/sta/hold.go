package sta

import (
	"fmt"
	"math"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/units"
)

// HoldViolation is one register whose fastest incoming path races the
// clock edge.
type HoldViolation struct {
	Reg netlist.RegID
	// MinArrival is the earliest the D pin can change after the edge.
	MinArrival units.Tau
	// Required is hold time plus the skew allocation.
	Required units.Tau
	// Slack is MinArrival - Required (negative means violated).
	Slack units.Tau
}

// HoldReport summarizes a min-delay analysis.
type HoldReport struct {
	// WorstSlack is the tightest hold margin in the design.
	WorstSlack units.Tau
	// Violations lists registers with negative slack.
	Violations []HoldViolation
	// MinArrival per net (earliest change after the launching edge).
	MinArrival []units.Tau
}

func (h HoldReport) String() string {
	return fmt.Sprintf("hold: worst slack %.2f FO4, %d violations", h.WorstSlack.FO4(), len(h.Violations))
}

// HoldCheck runs min-delay analysis: propagate the *earliest* possible
// arrival from every start point and check each register's hold
// requirement against the skew allocation at the given cycle. The paper's
// section 4.1 point that ASIC registers "have to be more tolerant to
// clock skew" is this check: more skew demands more hold margin, which
// guard-banded cells buy with larger hold times and designs buy with
// min-delay padding buffers.
func HoldCheck(n *netlist.Netlist, clk Clocking, cycle units.Tau) (HoldReport, error) {
	if err := n.Check(); err != nil {
		return HoldReport{}, err
	}
	order, err := n.Levelize()
	if err != nil {
		return HoldReport{}, err
	}
	minArr := make([]units.Tau, n.NumNets())
	for i := range minArr {
		minArr[i] = units.Tau(math.Inf(1))
	}
	for _, id := range n.Inputs() {
		// Primary inputs are assumed held stable through the edge by
		// the environment; they do not race internal registers.
		minArr[id] = units.Tau(math.Inf(1))
	}
	for _, r := range n.Regs() {
		// Fastest clock-to-Q with zero load margin: the contamination
		// delay, approximated as half the nominal clock-to-Q, plus any
		// padding delay annotated on the Q net.
		minArr[r.Q] = r.Cell.ClkToQ/2 + n.Net(r.Q).ExtraDelay
	}
	for _, gid := range order {
		g := n.Gate(gid)
		worst := units.Tau(math.Inf(1))
		for _, in := range g.In {
			if minArr[in] < worst {
				worst = minArr[in]
			}
		}
		if math.IsInf(float64(worst), 1) {
			minArr[g.Out] = worst
			continue
		}
		// Contamination delay of the gate: parasitic only (the fastest
		// input-to-output transfer, no effort component charged), plus
		// annotated wire/padding delay.
		minArr[g.Out] = worst + g.Cell.P + n.Net(g.Out).ExtraDelay
	}

	skewAbs := units.Tau(clk.SkewFrac * float64(cycle))
	rep := HoldReport{MinArrival: minArr, WorstSlack: units.Tau(math.Inf(1))}
	for _, r := range n.Regs() {
		ma := minArr[r.D]
		if math.IsInf(float64(ma), 1) {
			continue // fed only by primary inputs: no race
		}
		required := r.Cell.Hold + skewAbs
		slack := ma - required
		if slack < rep.WorstSlack {
			rep.WorstSlack = slack
		}
		if slack < 0 {
			rep.Violations = append(rep.Violations, HoldViolation{
				Reg: r.ID, MinArrival: ma, Required: required, Slack: slack,
			})
		}
	}
	if math.IsInf(float64(rep.WorstSlack), 1) {
		rep.WorstSlack = 0
	}
	return rep, nil
}

// PadHold fixes every hold violation by inserting a dedicated delay
// buffer between the racing register and its D net, so the padding
// never slows the functional fanout of that net. It returns the number
// of registers padded. The area/power cost of min-delay padding is part
// of why high skew budgets hurt ASICs beyond the cycle-time term.
func PadHold(n *netlist.Netlist, lib *cell.Library, clk Clocking, cycle units.Tau) (int, error) {
	buf := lib.Smallest(cell.FuncBuf)
	inv := lib.Smallest(cell.FuncInv)
	if buf == nil && inv == nil {
		return 0, fmt.Errorf("sta: library %s has no buffer or inverter for hold fixes", lib.Name)
	}
	rep, err := HoldCheck(n, clk, cycle)
	if err != nil {
		return 0, err
	}
	padded := 0
	for _, v := range rep.Violations {
		r := n.Reg(v.Reg)
		need := -v.Slack
		var out netlist.NetID
		if buf != nil {
			out, err = n.AddGate(buf, r.D)
		} else {
			var mid netlist.NetID
			mid, err = n.AddGate(inv, r.D)
			if err == nil {
				out, err = n.AddGate(inv, mid)
			}
		}
		if err != nil {
			return padded, err
		}
		// The buffer's own contamination (its parasitic) counts; the
		// remainder is realized as routing detour on its output.
		pad := need - padCellP(buf, inv)
		if pad > 0 {
			n.Net(out).ExtraDelay = pad
		}
		n.RewireRegD(v.Reg, out)
		padded++
	}
	return padded, nil
}

func padCellP(buf, inv *cell.Cell) units.Tau {
	if buf != nil {
		return buf.P
	}
	return 2 * inv.P
}
