package sta

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
)

func TestRequiredTimesBasics(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := ad.N
	r, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Target exactly the worst arrival: worst slack must be ~zero.
	rep, err := r.RequiredTimes(n, r.WorstEndpointDelay)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rep.WorstSlack)) > 1e-9 {
		t.Fatalf("slack at exact target = %g, want 0", float64(rep.WorstSlack))
	}
	if rep.CriticalCount == 0 {
		t.Fatal("no critical nets at zero slack")
	}
	// Loosen the target by 10 tau: worst slack becomes exactly 10.
	rep2, err := r.RequiredTimes(n, r.WorstEndpointDelay+10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rep2.WorstSlack)-10) > 1e-9 {
		t.Fatalf("loosened slack = %g, want 10", float64(rep2.WorstSlack))
	}
	// Tighten: negative slack.
	rep3, err := r.RequiredTimes(n, r.WorstEndpointDelay-5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rep3.WorstSlack)+5) > 1e-9 {
		t.Fatalf("tightened slack = %g, want -5", float64(rep3.WorstSlack))
	}
}

func TestSlackConsistentWithArrival(t *testing.T) {
	// For every net on the critical path, slack at the exact target is
	// zero; off-path nets have non-negative slack.
	lib := cell.RichASIC()
	ad, err := circuits.KoggeStone(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	n := ad.N
	r, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RequiredTimes(n, r.WorstEndpointDelay)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range r.Critical {
		if math.IsInf(float64(rep.Slack[step.Net]), 1) {
			t.Fatal("critical net has infinite slack")
		}
		if rep.Slack[step.Net] > 1e-9 {
			t.Fatalf("critical-path net %d has positive slack %g", step.Net, float64(rep.Slack[step.Net]))
		}
	}
	for i, s := range rep.Slack {
		if !math.IsInf(float64(s), 1) && float64(s) < -1e-9 {
			t.Fatalf("net %d has negative slack at the exact target", i)
		}
	}
}

func TestWorstEndpoints(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.RippleCarry(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := ad.N
	r, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eps := r.WorstEndpoints(n, 5)
	if len(eps) != 5 {
		t.Fatalf("got %d endpoints, want 5", len(eps))
	}
	for i := 1; i < len(eps); i++ {
		if eps[i].Arrival > eps[i-1].Arrival {
			t.Fatal("endpoints not sorted worst-first")
		}
	}
	// The worst endpoint matches the analyzer's.
	if eps[0].Arrival != r.WorstEndpointDelay {
		t.Fatalf("worst endpoint %g != analyzer worst %g",
			float64(eps[0].Arrival), float64(r.WorstEndpointDelay))
	}
	// Unlimited k returns all endpoints.
	all := r.WorstEndpoints(n, 0)
	if len(all) != len(n.Outputs()) {
		t.Fatalf("all endpoints = %d, want %d", len(all), len(n.Outputs()))
	}
}
