package sta

import (
	"fmt"

	"repro/internal/units"
)

// Clocking describes the clock-distribution quality of a methodology.
// The paper's calibration points (section 4.1): ASIC clock trees run 10%
// or more of the cycle in skew; a carefully engineered custom tree holds
// about 5% (75 ps on the 600 MHz Alpha 21264).
type Clocking struct {
	// SkewFrac is clock skew as a fraction of the cycle time.
	SkewFrac float64
	// JitterTau is additional absolute uncertainty per cycle, in tau.
	JitterTau units.Tau
}

// ASICClocking is a typical synthesized clock tree.
func ASICClocking() Clocking { return Clocking{SkewFrac: 0.10} }

// CustomClocking is a hand-tuned custom clock distribution.
func CustomClocking() Clocking { return Clocking{SkewFrac: 0.05} }

// CycleReport decomposes a minimum cycle time into its components, the
// accounting of paper sections 4 and 4.1.
type CycleReport struct {
	// Cycle is the minimum clock period in tau.
	Cycle units.Tau
	// Logic is the combinational portion (including clock-to-Q of the
	// launching register, which arrives bundled in the arrival times).
	Logic units.Tau
	// Setup is the worst destination setup time.
	Setup units.Tau
	// Skew is the skew+jitter allocation at the computed cycle.
	Skew units.Tau
	// SkewFrac echoes the methodology skew fraction.
	SkewFrac float64
}

// FO4 returns the cycle time in FO4 units.
func (c CycleReport) FO4() float64 { return c.Cycle.FO4() }

// FrequencyMHz returns the clock frequency in the given process.
func (c CycleReport) FrequencyMHz(p units.Process) float64 { return p.FrequencyMHz(c.Cycle) }

// OverheadFrac is the fraction of the cycle not spent in logic.
func (c CycleReport) OverheadFrac() float64 {
	if c.Cycle == 0 {
		return 0
	}
	return float64((c.Cycle - c.Logic) / c.Cycle)
}

func (c CycleReport) String() string {
	return fmt.Sprintf("cycle %.1f FO4 (logic %.1f + setup %.1f + skew %.1f, overhead %.0f%%)",
		c.Cycle.FO4(), c.Logic.FO4(), c.Setup.FO4(), c.Skew.FO4(), 100*c.OverheadFrac())
}

// MinCycle converts a timing result into a minimum cycle time under the
// given clocking. The skew fraction is charged against the cycle itself:
// solving cycle = path + setup + jitter + skewFrac*cycle.
func (r *Result) MinCycle(clk Clocking) (CycleReport, error) {
	if clk.SkewFrac < 0 || clk.SkewFrac >= 1 {
		return CycleReport{}, fmt.Errorf("sta: skew fraction %.2f out of [0,1)", clk.SkewFrac)
	}
	setup := r.WorstEndpointDelay - r.WorstComb
	base := r.WorstComb + setup + clk.JitterTau
	cycle := units.Tau(float64(base) / (1 - clk.SkewFrac))
	return CycleReport{
		Cycle:    cycle,
		Logic:    r.WorstComb,
		Setup:    setup,
		Skew:     cycle - base,
		SkewFrac: clk.SkewFrac,
	}, nil
}
