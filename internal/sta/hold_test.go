package sta

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/units"
)

// regToReg builds a direct register-to-register transfer with the given
// number of gates in between.
func regToReg(lib *cell.Library, gates int) *netlist.Netlist {
	n := netlist.New("r2r")
	ff := lib.DefaultSeq(2)
	a := n.AddInput("a")
	q := n.AddReg(ff, a)
	x := q
	for i := 0; i < gates; i++ {
		x = n.MustGate(lib.Smallest(cell.FuncInv), x)
	}
	n.AddReg(ff, x)
	return n
}

func TestHoldViolationOnDirectTransfer(t *testing.T) {
	lib := cell.RichASIC()
	n := regToReg(lib, 0) // Q wired straight into the next D
	// At a large cycle with 10% skew, the absolute skew exceeds the
	// fast clock-to-Q: a race.
	rep, err := HoldCheck(n, ASICClocking(), units.FromFO4(80))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("direct reg-to-reg at 8 FO4 of skew must violate hold")
	}
	if rep.WorstSlack >= 0 {
		t.Fatal("worst slack should be negative")
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
}

func TestHoldCleanWithLogicInPath(t *testing.T) {
	lib := cell.RichASIC()
	n := regToReg(lib, 12) // plenty of contamination delay
	rep, err := HoldCheck(n, ASICClocking(), units.FromFO4(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("12 gates of contamination should clear hold, got %d violations", len(rep.Violations))
	}
	if rep.WorstSlack <= 0 {
		t.Fatal("slack should be positive")
	}
}

func TestHoldSkewSensitivity(t *testing.T) {
	lib := cell.RichASIC()
	n := regToReg(lib, 2)
	cycle := units.FromFO4(40)
	asic, err := HoldCheck(n, ASICClocking(), cycle)
	if err != nil {
		t.Fatal(err)
	}
	custom, err := HoldCheck(n, CustomClocking(), cycle)
	if err != nil {
		t.Fatal(err)
	}
	if custom.WorstSlack <= asic.WorstSlack {
		t.Fatal("lower skew must improve hold slack")
	}
}

func TestHoldIgnoresPrimaryInputFedRegs(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	n.AddReg(lib.DefaultSeq(2), a)
	rep, err := HoldCheck(n, ASICClocking(), units.FromFO4(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatal("PI-fed registers do not race the internal clock")
	}
}

func TestPadHoldClearsViolations(t *testing.T) {
	lib := cell.RichASIC()
	n := regToReg(lib, 0)
	cycle := units.FromFO4(80)
	padded, err := PadHold(n, lib, ASICClocking(), cycle)
	if err != nil {
		t.Fatal(err)
	}
	if padded == 0 {
		t.Fatal("nothing padded")
	}
	rep, err := HoldCheck(n, ASICClocking(), cycle)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("padding left %d violations", len(rep.Violations))
	}
}
