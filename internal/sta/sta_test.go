package sta

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/units"
)

// chain builds n inverters in series, each loaded by the next (the last
// drives a marked output with the given extra load).
func chain(lib *cell.Library, n int) *netlist.Netlist {
	nl := netlist.New("chain")
	x := nl.AddInput("a")
	inv := lib.Smallest(cell.FuncInv)
	for i := 0; i < n; i++ {
		x = nl.MustGate(inv, x)
	}
	nl.MarkOutput(x)
	return nl
}

func TestInverterChainDelay(t *testing.T) {
	lib := cell.RichASIC()
	nl := chain(lib, 10)
	r, err := Analyze(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Nine self-loaded stages (p+g = 2 tau each) + one unloaded final
	// stage (p = 1 tau).
	want := units.Tau(9*2 + 1)
	if math.Abs(float64(r.WorstComb-want)) > 1e-9 {
		t.Fatalf("chain delay = %g tau, want %g", float64(r.WorstComb), float64(want))
	}
	if r.Depth() != 10 {
		t.Fatalf("depth = %d, want 10", r.Depth())
	}
}

func TestFO4ChainCalibration(t *testing.T) {
	// An inverter chain where each stage drives 4x its own input cap
	// must run at exactly 1 FO4 per stage. Construct with explicit
	// wire cap to reach h=4 on every stage.
	lib := cell.RichASIC()
	nl := netlist.New("fo4chain")
	x := nl.AddInput("a")
	inv := lib.Smallest(cell.FuncInv)
	const stages = 8
	for i := 0; i < stages; i++ {
		x = nl.MustGate(inv, x)
	}
	nl.MarkOutput(x)
	// Each internal net already carries one inverter input (h=1); add
	// wire cap worth three more inputs. The final net gets 4 inputs of
	// load via PortLoad.
	for _, g := range nl.Gates() {
		out := nl.Net(g.Out)
		if out.IsOutput {
			out.PortLoad = units.Cap(4 * float64(inv.InputCap()))
		} else {
			out.WireCap = units.Cap(3 * float64(inv.InputCap()))
		}
	}
	r, err := Analyze(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CombFO4(); math.Abs(got-stages) > 1e-9 {
		t.Fatalf("FO4-loaded chain = %g FO4, want %d", got, stages)
	}
}

func TestWorstEndpointIsRegisterWithSetup(t *testing.T) {
	lib := cell.RichASIC()
	nl := netlist.New("reg")
	ff := lib.DefaultSeq(2)
	a := nl.AddInput("a")
	q := nl.AddReg(ff, a) // input register
	x := nl.MustGate(lib.Smallest(cell.FuncInv), q)
	nl.AddReg(ff, x) // capture register
	r, err := Analyze(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstEndKind != EndRegisterD {
		t.Fatal("worst endpoint should be the register D pin")
	}
	if r.WorstEndpointDelay <= r.WorstComb {
		t.Fatal("endpoint delay must include setup")
	}
	wantSetup := ff.Setup
	if got := r.WorstEndpointDelay - r.WorstComb; math.Abs(float64(got-wantSetup)) > 1e-9 {
		t.Fatalf("setup charged = %g, want %g", float64(got), float64(wantSetup))
	}
	// Launch overhead: arrival at Q must equal clk-to-Q plus output
	// drive delay.
	if r.Arrival[q] < ff.ClkToQ {
		t.Fatal("arrival at Q must include clock-to-Q")
	}
}

func TestCriticalPathBacktrack(t *testing.T) {
	lib := cell.RichASIC()
	nl := netlist.New("y")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	// Long arm: 4 inverters from a. Short arm: 1 inverter from b.
	x := a
	for i := 0; i < 4; i++ {
		x = nl.MustGate(lib.Smallest(cell.FuncInv), x)
	}
	y := nl.MustGate(lib.Smallest(cell.FuncInv), b)
	z := nl.MustGate(lib.Smallest(cell.FuncNand2), x, y)
	nl.MarkOutput(z)
	r, err := Analyze(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Path must start at a, not b.
	first := r.Critical[0]
	if first.What != "PI:a" {
		t.Fatalf("critical path starts at %q, want PI:a", first.What)
	}
	if len(r.Critical) != 6 { // PI + 4 inv + nand
		t.Fatalf("path has %d steps, want 6", len(r.Critical))
	}
	// Arrivals along the path must be nondecreasing.
	for i := 1; i < len(r.Critical); i++ {
		if r.Critical[i].Arrival < r.Critical[i-1].Arrival {
			t.Fatal("arrivals must be nondecreasing along the critical path")
		}
	}
	if r.PathString() == "" {
		t.Fatal("empty path string")
	}
}

func TestInputArrivalShiftsEverything(t *testing.T) {
	lib := cell.RichASIC()
	nl := chain(lib, 3)
	r0, _ := Analyze(nl, Options{})
	r5, _ := Analyze(nl, Options{InputArrival: 5})
	if math.Abs(float64(r5.WorstComb-r0.WorstComb-5)) > 1e-9 {
		t.Fatal("input arrival must shift the endpoint by exactly its value")
	}
}

func TestAnalyzeRejectsNoEndpoints(t *testing.T) {
	nl := netlist.New("empty")
	nl.AddInput("a")
	if _, err := Analyze(nl, Options{}); err == nil {
		t.Fatal("netlist without endpoints must error")
	}
}

func TestMinCycleDecomposition(t *testing.T) {
	lib := cell.RichASIC()
	nl := netlist.New("p")
	ff := lib.DefaultSeq(2)
	a := nl.AddInput("a")
	q := nl.AddReg(ff, a)
	x := q
	for i := 0; i < 20; i++ {
		x = nl.MustGate(lib.Smallest(cell.FuncInv), x)
	}
	nl.AddReg(ff, x)
	r, err := Analyze(nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.MinCycle(ASICClocking())
	if err != nil {
		t.Fatal(err)
	}
	// cycle = (logic+setup)/(1-skew); verify the algebra.
	want := (float64(r.WorstComb) + float64(rep.Setup)) / 0.9
	if math.Abs(float64(rep.Cycle)-want) > 1e-9 {
		t.Fatalf("cycle = %g, want %g", float64(rep.Cycle), want)
	}
	if rep.OverheadFrac() <= 0 || rep.OverheadFrac() >= 1 {
		t.Fatalf("overhead fraction %g out of (0,1)", rep.OverheadFrac())
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestMinCycleSkewValidation(t *testing.T) {
	lib := cell.RichASIC()
	nl := chain(lib, 2)
	r, _ := Analyze(nl, Options{})
	if _, err := r.MinCycle(Clocking{SkewFrac: 1.0}); err == nil {
		t.Fatal("skew fraction 1.0 must be rejected")
	}
	if _, err := r.MinCycle(Clocking{SkewFrac: -0.1}); err == nil {
		t.Fatal("negative skew must be rejected")
	}
}

func TestCustomSkewBeatsASICSkew(t *testing.T) {
	lib := cell.RichASIC()
	nl := chain(lib, 30)
	r, _ := Analyze(nl, Options{})
	asic, _ := r.MinCycle(ASICClocking())
	custom, _ := r.MinCycle(CustomClocking())
	gain := float64(asic.Cycle) / float64(custom.Cycle)
	// Paper section 4.1: about 10% speed from custom-quality skew alone
	// (10% vs 5% of cycle). (1/0.9)/(1/0.95) = 1.0556 on pure-logic
	// cycles; with setup it stays in a 4-7% band.
	if gain < 1.04 || gain > 1.08 {
		t.Fatalf("skew-only gain = %.3f, want ~1.05", gain)
	}
}

func TestArrivalMonotoneUnderAddedLoad(t *testing.T) {
	lib := cell.RichASIC()
	f := func(extra uint8) bool {
		nl := chain(lib, 5)
		r0, err := Analyze(nl, Options{})
		if err != nil {
			return false
		}
		nl.Net(nl.Outputs()[0]).PortLoad = units.Cap(float64(extra))
		r1, err := Analyze(nl, Options{})
		if err != nil {
			return false
		}
		return r1.WorstComb >= r0.WorstComb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
