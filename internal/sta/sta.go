// Package sta is the static timing analyzer: it propagates arrival times
// through the combinational graph of a netlist, extracts critical paths,
// and converts worst path delay plus sequencing overheads (setup,
// clock-to-Q, clock skew) into a minimum cycle time and clock frequency.
//
// All delays are in tau (see internal/units); reports convert to FO4 and,
// given a process, to picoseconds and MHz. The decomposition of cycle time
// into logic + latch overhead + skew is exactly the accounting the paper
// performs in sections 4 and 4.1.
package sta

import (
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/units"
)

// Options configures an analysis run.
type Options struct {
	// InputArrival is the arrival time applied at every primary input
	// (time already consumed outside this block).
	InputArrival units.Tau

	// OutputLoad is additional load applied to primary output nets that
	// have no PortLoad annotation (a receiving gate plus wire).
	OutputLoad units.Cap
}

// Step is one hop of a timing path.
type Step struct {
	Gate    netlist.GateID // None for the start point
	Net     netlist.NetID
	Arrival units.Tau
	Delay   units.Tau // delay contributed by this hop
	What    string    // human-readable: cell name, "PI", "regQ"
}

// EndKind classifies a path endpoint.
type EndKind int

// Path endpoint kinds.
const (
	EndPrimaryOutput EndKind = iota
	EndRegisterD
)

// Result is the outcome of one analysis.
type Result struct {
	// Arrival holds the computed arrival time of every net (indexed by
	// NetID). Nets unreachable from a start point have arrival 0.
	Arrival []units.Tau

	// WorstComb is the worst arrival at any endpoint before endpoint
	// overhead (setup) is added.
	WorstComb units.Tau

	// WorstEndpointDelay is the worst arrival including destination
	// setup time where the endpoint is a register.
	WorstEndpointDelay units.Tau

	// WorstEnd identifies the worst endpoint net.
	WorstEnd     netlist.NetID
	WorstEndKind EndKind

	// Critical is the worst path, start to end.
	Critical []Step

	n *netlist.Netlist
}

// Analyze runs arrival-time propagation over the netlist. It returns an
// error when the combinational graph has a cycle or the netlist fails its
// structural check.
func Analyze(n *netlist.Netlist, opt Options) (*Result, error) {
	if err := n.Check(); err != nil {
		return nil, err
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}

	arrival := make([]units.Tau, n.NumNets())
	// from[i] records the net whose arrival determined net i's arrival,
	// for path backtracking; None for start points.
	from := make([]netlist.NetID, n.NumNets())
	for i := range from {
		from[i] = netlist.None
	}

	load := func(id netlist.NetID) units.Cap {
		l := n.Load(id)
		nt := n.Net(id)
		if nt.IsOutput && nt.PortLoad == 0 {
			l += opt.OutputLoad
		}
		return l
	}

	// Start points.
	for _, id := range n.Inputs() {
		arrival[id] = opt.InputArrival
	}
	for _, r := range n.Regs() {
		arrival[r.Q] = r.Cell.Delay(load(r.Q)) + n.Net(r.Q).ExtraDelay
	}

	// Propagate in topological order.
	for _, gid := range order {
		g := n.Gate(gid)
		worst := units.Tau(math.Inf(-1))
		var worstIn netlist.NetID = netlist.None
		for _, in := range g.In {
			if arrival[in] > worst {
				worst, worstIn = arrival[in], in
			}
		}
		if worstIn == netlist.None {
			worst = 0
		}
		d := g.Cell.Delay(load(g.Out)) + n.Net(g.Out).ExtraDelay
		arrival[g.Out] = worst + d
		from[g.Out] = worstIn
	}

	res := &Result{Arrival: arrival, n: n, WorstEnd: netlist.None}

	// Endpoints: register D pins (with setup) and primary outputs.
	worstTotal := units.Tau(math.Inf(-1))
	for _, r := range n.Regs() {
		t := arrival[r.D] + r.Cell.Setup
		if t > worstTotal {
			worstTotal = t
			res.WorstComb = arrival[r.D]
			res.WorstEnd = r.D
			res.WorstEndKind = EndRegisterD
		}
	}
	for _, id := range n.Outputs() {
		if arrival[id] > worstTotal {
			worstTotal = arrival[id]
			res.WorstComb = arrival[id]
			res.WorstEnd = id
			res.WorstEndKind = EndPrimaryOutput
		}
	}
	if res.WorstEnd == netlist.None {
		return nil, fmt.Errorf("sta: netlist %s has no timing endpoints", n.Name)
	}
	res.WorstEndpointDelay = worstTotal

	// Backtrack the critical path.
	res.Critical = backtrack(n, arrival, from, res.WorstEnd)
	return res, nil
}

func backtrack(n *netlist.Netlist, arrival []units.Tau, from []netlist.NetID, end netlist.NetID) []Step {
	var rev []Step
	id := end
	for id != netlist.None {
		nt := n.Net(id)
		st := Step{Gate: netlist.None, Net: id, Arrival: arrival[id]}
		switch {
		case nt.Driver != netlist.None:
			g := n.Gate(nt.Driver)
			st.Gate = g.ID
			st.What = g.Cell.Name
		case nt.DriverReg != netlist.None:
			st.What = "regQ:" + n.Reg(nt.DriverReg).Cell.Name
		default:
			st.What = "PI:" + nt.Name
		}
		prev := from[id]
		if prev != netlist.None {
			st.Delay = arrival[id] - arrival[prev]
		} else {
			st.Delay = arrival[id]
		}
		rev = append(rev, st)
		id = prev
	}
	// Reverse into start-to-end order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Depth returns the number of gates on the critical path.
func (r *Result) Depth() int {
	d := 0
	for _, s := range r.Critical {
		if s.Gate != netlist.None {
			d++
		}
	}
	return d
}

// CombFO4 returns the worst combinational delay in FO4 units.
func (r *Result) CombFO4() float64 { return r.WorstComb.FO4() }

// PathString formats the critical path for reports.
func (r *Result) PathString() string {
	s := ""
	for i, st := range r.Critical {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%s@%.1f", st.What, st.Arrival.FO4())
	}
	return s
}
