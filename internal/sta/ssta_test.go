package sta

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
)

func TestMonteCarloDelayBasics(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.KoggeStone(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	n := ad.N
	nominal, err := Analyze(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MonteCarloDelay(n, 0.05, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(samples)
	// The max-of-paths statistic shifts the mean above nominal, but not
	// absurdly: within ~15%.
	ratio := float64(st.Mean) / float64(nominal.WorstComb)
	if ratio < 1.0 || ratio > 1.15 {
		t.Fatalf("MC mean / nominal = %.3f, want slightly above 1", ratio)
	}
	if st.P95 <= st.P50 {
		t.Fatal("p95 must exceed the median")
	}
	if st.Sigma <= 0 {
		t.Fatal("nonzero sigma in, zero sigma out")
	}
	if st.String() == "" {
		t.Fatal("empty stats description")
	}
}

func TestMonteCarloZeroSigmaIsNominal(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	nominal, err := Analyze(ad.N, Options{})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MonteCarloDelay(ad.N, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if math.Abs(float64(s-nominal.WorstEndpointDelay)/float64(s)) > 1e-9 {
			t.Fatalf("zero-sigma sample %.3f != nominal %.3f",
				float64(s), float64(nominal.WorstEndpointDelay))
		}
	}
}

func TestMonteCarloSpreadGrowsWithSigma(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := MonteCarloDelay(ad.N, 0.02, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MonteCarloDelay(ad.N, 0.10, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Stats(hi).Sigma <= Stats(lo).Sigma {
		t.Fatal("larger gate sigma must widen the path distribution")
	}
}

func TestMonteCarloDeterministicAndValidated(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MonteCarloDelay(ad.N, 0.05, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloDelay(ad.N, 0.05, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce samples")
		}
	}
	if _, err := MonteCarloDelay(ad.N, 0.05, 0, 1); err == nil {
		t.Fatal("zero trials must be rejected")
	}
	if _, err := MonteCarloDelay(ad.N, -1, 10, 1); err == nil {
		t.Fatal("negative sigma must be rejected")
	}
}

func TestMonteCarloAveragingEffect(t *testing.T) {
	// A long chain (many gates in series) averages per-gate randomness:
	// its relative spread should be well below the per-gate sigma. A
	// single gate keeps nearly the full sigma.
	lib := cell.RichASIC()
	long := chain(lib, 60)
	short := chain(lib, 1)
	sl, err := MonteCarloDelay(long, 0.10, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := MonteCarloDelay(short, 0.10, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	relLong := float64(Stats(sl).Sigma) / float64(Stats(sl).Mean)
	relShort := float64(Stats(ss).Sigma) / float64(Stats(ss).Mean)
	if relLong >= relShort/2 {
		t.Fatalf("60-gate chain rel-sigma %.3f should be far below 1-gate %.3f", relLong, relShort)
	}
}
