package sta

import (
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/units"
)

// SlackReport carries required-time analysis against a target cycle.
type SlackReport struct {
	// Target is the required arrival at the latest endpoint.
	Target units.Tau
	// Required holds each net's required time (inf for nets that reach
	// no endpoint).
	Required []units.Tau
	// Slack is Required - Arrival per net.
	Slack []units.Tau
	// WorstSlack is the minimum slack (negative when the target is
	// missed).
	WorstSlack units.Tau
	// CriticalCount is the number of nets with slack within 5% of the
	// worst — the size of the near-critical set sizing has to fix.
	CriticalCount int
}

// RequiredTimes propagates required times backward from every endpoint
// against the given target and returns per-net slack. Endpoints are
// register D pins (required = target - setup) and primary outputs
// (required = target).
func (r *Result) RequiredTimes(n *netlist.Netlist, target units.Tau) (*SlackReport, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	req := make([]units.Tau, n.NumNets())
	for i := range req {
		req[i] = units.Tau(math.Inf(1))
	}
	tighten := func(id netlist.NetID, t units.Tau) {
		if t < req[id] {
			req[id] = t
		}
	}
	for _, reg := range n.Regs() {
		tighten(reg.D, target-reg.Cell.Setup)
	}
	for _, id := range n.Outputs() {
		tighten(id, target)
	}
	// Walk gates in reverse topological order: a gate's input must
	// arrive early enough that input + gate delay meets the output's
	// requirement.
	load := func(id netlist.NetID) units.Cap { return n.Load(id) }
	for i := len(order) - 1; i >= 0; i-- {
		g := n.Gate(order[i])
		d := g.Cell.Delay(load(g.Out)) + n.Net(g.Out).ExtraDelay
		need := req[g.Out] - d
		for _, in := range g.In {
			tighten(in, need)
		}
	}

	rep := &SlackReport{Target: target, Required: req, Slack: make([]units.Tau, n.NumNets())}
	rep.WorstSlack = units.Tau(math.Inf(1))
	for i := range req {
		if math.IsInf(float64(req[i]), 1) {
			rep.Slack[i] = req[i]
			continue
		}
		rep.Slack[i] = req[i] - r.Arrival[i]
		if rep.Slack[i] < rep.WorstSlack {
			rep.WorstSlack = rep.Slack[i]
		}
	}
	if math.IsInf(float64(rep.WorstSlack), 1) {
		rep.WorstSlack = 0
	}
	margin := rep.WorstSlack + units.Tau(0.05*math.Abs(float64(target)))
	for i := range rep.Slack {
		if !math.IsInf(float64(rep.Slack[i]), 1) && rep.Slack[i] <= margin {
			rep.CriticalCount++
		}
	}
	return rep, nil
}

// Endpoint describes one timing endpoint sorted by criticality.
type Endpoint struct {
	Net     netlist.NetID
	Kind    EndKind
	Arrival units.Tau // including destination setup where applicable
}

// WorstEndpoints lists the k latest-arriving endpoints, worst first —
// the per-path view timing reports lead with.
func (r *Result) WorstEndpoints(n *netlist.Netlist, k int) []Endpoint {
	var eps []Endpoint
	for _, reg := range n.Regs() {
		eps = append(eps, Endpoint{Net: reg.D, Kind: EndRegisterD, Arrival: r.Arrival[reg.D] + reg.Cell.Setup})
	}
	for _, id := range n.Outputs() {
		eps = append(eps, Endpoint{Net: id, Kind: EndPrimaryOutput, Arrival: r.Arrival[id]})
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].Arrival != eps[j].Arrival {
			return eps[i].Arrival > eps[j].Arrival
		}
		return eps[i].Net < eps[j].Net
	})
	if k > 0 && len(eps) > k {
		eps = eps[:k]
	}
	return eps
}
