package sta

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/netlist"
	"repro/internal/units"
)

// MonteCarloDelay runs statistical timing: every gate's delay is scaled by
// an independent lognormal factor of the given sigma (intra-die random
// variation) and the worst endpoint delay is recorded per trial. This is
// the gate-level mechanism beneath procvar's die-level intra-die term:
// a critical path of many gates averages out per-gate randomness, but the
// max over many near-critical paths shifts the mean upward — which is why
// dies run slower than the nominal corner predicts even before global
// variation.
func MonteCarloDelay(n *netlist.Netlist, sigma float64, trials int, seed int64) ([]units.Tau, error) {
	if trials < 1 {
		return nil, fmt.Errorf("sta: need at least one trial")
	}
	if sigma < 0 {
		return nil, fmt.Errorf("sta: negative sigma")
	}
	if err := n.Check(); err != nil {
		return nil, err
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Precompute nominal per-gate delays and per-reg launch delays.
	gateDelay := make([]float64, n.NumGates())
	for _, g := range n.Gates() {
		gateDelay[g.ID] = float64(g.Cell.Delay(n.Load(g.Out)) + n.Net(g.Out).ExtraDelay)
	}
	regDelay := make([]float64, n.NumRegs())
	for _, r := range n.Regs() {
		regDelay[r.ID] = float64(r.Cell.Delay(n.Load(r.Q)) + n.Net(r.Q).ExtraDelay)
	}

	results := make([]units.Tau, trials)
	arrival := make([]float64, n.NumNets())
	for tr := 0; tr < trials; tr++ {
		for i := range arrival {
			arrival[i] = 0
		}
		for _, r := range n.Regs() {
			arrival[r.Q] = regDelay[r.ID] * math.Exp(rng.NormFloat64()*sigma)
		}
		for _, gid := range order {
			g := n.Gate(gid)
			worst := 0.0
			for _, in := range g.In {
				if arrival[in] > worst {
					worst = arrival[in]
				}
			}
			arrival[g.Out] = worst + gateDelay[gid]*math.Exp(rng.NormFloat64()*sigma)
		}
		worst := 0.0
		for _, r := range n.Regs() {
			if t := arrival[r.D] + float64(r.Cell.Setup); t > worst {
				worst = t
			}
		}
		for _, id := range n.Outputs() {
			if arrival[id] > worst {
				worst = arrival[id]
			}
		}
		results[tr] = units.Tau(worst)
	}
	return results, nil
}

// DelayStats summarizes a Monte Carlo run.
type DelayStats struct {
	Mean, Sigma units.Tau
	P50, P95    units.Tau
}

// Stats computes summary statistics of sampled delays.
func Stats(samples []units.Tau) DelayStats {
	if len(samples) == 0 {
		return DelayStats{}
	}
	sum := 0.0
	for _, s := range samples {
		sum += float64(s)
	}
	mean := sum / float64(len(samples))
	varsum := 0.0
	for _, s := range samples {
		d := float64(s) - mean
		varsum += d * d
	}
	sorted := make([]float64, len(samples))
	for i, s := range samples {
		sorted[i] = float64(s)
	}
	sort.Float64s(sorted)
	q := func(p float64) units.Tau {
		idx := int(p * float64(len(sorted)-1))
		return units.Tau(sorted[idx])
	}
	return DelayStats{
		Mean:  units.Tau(mean),
		Sigma: units.Tau(math.Sqrt(varsum / float64(len(samples)))),
		P50:   q(0.5),
		P95:   q(0.95),
	}
}

func (d DelayStats) String() string {
	return fmt.Sprintf("delay %.1f FO4 +/- %.2f (p95 %.1f)", d.Mean.FO4(), d.Sigma.FO4(), d.P95.FO4())
}
