package pipeline

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
)

func TestRefineImprovesBalance(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathComb(lib, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	clk := sta.ASICClocking()
	plain, _, err := Evaluate(n, Options{Stages: 4, Seq: lib.DefaultSeq(2), Method: BalancedDelay}, clk, false)
	if err != nil {
		t.Fatal(err)
	}
	refined, _, err := Evaluate(n, Options{Stages: 4, Seq: lib.DefaultSeq(2), Method: BalancedDelay, Refine: true}, clk, false)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Cycle > plain.Cycle {
		t.Fatalf("refinement made the cycle worse: %.1f -> %.1f FO4",
			plain.Cycle.FO4(), refined.Cycle.FO4())
	}
	// Refinement optimizes a pre-register-insertion estimate; allow a
	// small tolerance on the final measured imbalance.
	if RefinedImbalance(refined.StageDelays) > RefinedImbalance(plain.StageDelays)+0.05 {
		t.Fatalf("imbalance grew: %.3f -> %.3f",
			RefinedImbalance(plain.StageDelays), RefinedImbalance(refined.StageDelays))
	}
}

func TestRefinePreservesFunction(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Pipeline(ad.N, Options{Stages: 3, Seq: lib.DefaultSeq(2), Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	// Monotone stages survive refinement.
	for _, g := range p.Gates() {
		for _, fi := range p.FaninGates(g.ID) {
			if p.Gate(fi).Stage > g.Stage {
				t.Fatal("refinement broke stage monotonicity")
			}
		}
	}
	// Stream equivalence against the combinational original.
	combSim, err := netlist.NewSimulator(ad.N)
	if err != nil {
		t.Fatal(err)
	}
	pipeSim, err := netlist.NewSimulator(p)
	if err != nil {
		t.Fatal(err)
	}
	const stages = 3
	var refs [][]bool
	for c := 0; c < 25+stages; c++ {
		v := uint64(c*37+5) & 0xff
		in := map[string]bool{"cin": c%3 == 0}
		netlist.WordToInputs(in, "a", v, 8)
		netlist.WordToInputs(in, "b", v^0x5a, 8)
		out, err := combSim.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, append([]bool(nil), out...))
		if _, err := pipeSim.Step(in); err != nil {
			t.Fatal(err)
		}
		if c >= stages {
			for i, id := range p.Outputs() {
				if pipeSim.Value(id) != refs[c-stages][i] {
					t.Fatalf("cycle %d output %d mismatch", c, i)
				}
			}
		}
	}
}

func TestRefinedImbalanceMetric(t *testing.T) {
	if got := RefinedImbalance([]units.Tau{10, 10, 10}); got != 1 {
		t.Fatalf("balanced imbalance = %g, want 1", got)
	}
	if got := RefinedImbalance([]units.Tau{10, 30, 20}); got != 1.5 {
		t.Fatalf("imbalance = %g, want 1.5", got)
	}
	if RefinedImbalance(nil) != 1 {
		t.Fatal("empty slice should report 1")
	}
}
