package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

// TestPipelinePreservesFunction is the pipelining correctness theorem on
// real hardware: an S-stage pipeline of a combinational circuit produces
// exactly the same outputs as the original, S cycles later, for an
// arbitrary input stream. The data-alignment register chains inserted by
// Pipeline are what make this hold for signals that skip stages.
func TestPipelinePreservesFunction(t *testing.T) {
	lib := cell.RichASIC()
	for _, stages := range []int{1, 2, 3, 5} {
		stages := stages
		t.Run(fmt.Sprintf("stages=%d", stages), func(t *testing.T) {
			ad, err := circuits.CarryLookahead(lib, 8)
			if err != nil {
				t.Fatal(err)
			}
			comb := ad.N
			piped, err := Pipeline(comb, Options{Stages: stages, Seq: lib.DefaultSeq(2)})
			if err != nil {
				t.Fatal(err)
			}

			combSim, err := netlist.NewSimulator(comb)
			if err != nil {
				t.Fatal(err)
			}
			pipeSim, err := netlist.NewSimulator(piped)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(11))
			const streamLen = 40
			type vec struct {
				a, b uint64
				cin  bool
			}
			stream := make([]vec, streamLen)
			for i := range stream {
				stream[i] = vec{rng.Uint64() & 0xff, rng.Uint64() & 0xff, rng.Intn(2) == 1}
			}
			inputsFor := func(v vec) map[string]bool {
				in := map[string]bool{"cin": v.cin}
				netlist.WordToInputs(in, "a", v.a, 8)
				netlist.WordToInputs(in, "b", v.b, 8)
				return in
			}
			// Reference outputs from the combinational circuit, by
			// primary-output position.
			ref := make([][]bool, streamLen)
			for i, v := range stream {
				out, err := combSim.Eval(inputsFor(v))
				if err != nil {
					t.Fatal(err)
				}
				ref[i] = append([]bool(nil), out...)
			}
			// Streamed outputs from the pipeline; vector fed at step c
			// appears on the captured outputs at step c+stages.
			for c := 0; c < streamLen+stages; c++ {
				v := stream[min(c, streamLen-1)]
				if c < streamLen {
					v = stream[c]
				}
				if _, err := pipeSim.Step(inputsFor(v)); err != nil {
					t.Fatal(err)
				}
				produced := c - stages
				if produced < 0 {
					continue
				}
				got := make([]bool, len(piped.Outputs()))
				// Outputs were sampled before the edge of this step;
				// resample via a settle of the same inputs: Step already
				// returned them, so recompute from register state via
				// Value on output nets after the *previous* settle is
				// not available — instead compare using the returned map
				// by name. Names are preserved through capture regs'
				// nets (suffixed), so match by position instead.
				for i, id := range piped.Outputs() {
					got[i] = pipeSim.Value(id)
				}
				// Value() reflects the post-settle state of this step,
				// whose captured outputs hold the result of the vector
				// fed `stages` steps ago.
				for i := range got {
					if got[i] != ref[produced][i] {
						t.Fatalf("stages=%d: output %d of vector %d wrong", stages, i, produced)
					}
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPipelineLatencyIsExactlyStages feeds a single impulse through a
// pipelined inverter chain and checks the impulse emerges after exactly
// S cycles — neither earlier (missing alignment) nor later (extra regs).
func TestPipelineLatencyIsExactlyStages(t *testing.T) {
	lib := cell.RichASIC()
	for _, stages := range []int{2, 4} {
		n := netlist.New("imp")
		x := n.AddInput("d")
		for i := 0; i < 12; i++ {
			x = n.MustGate(lib.Smallest(cell.FuncInv), x)
		}
		n.MarkOutput(x) // 12 inversions: identity
		piped, err := Pipeline(n, Options{Stages: stages, Seq: lib.DefaultSeq(2)})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSimulator(piped)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up past the zero-initialization transient: with d held
		// low, the registers settle to the steady state of the identity
		// chain (output low) within `stages` cycles.
		for c := 0; c < stages+2; c++ {
			if _, err := sim.Step(map[string]bool{"d": false}); err != nil {
				t.Fatal(err)
			}
		}
		if sim.Value(piped.Outputs()[0]) {
			t.Fatalf("stages=%d: steady state not low after warm-up", stages)
		}
		// Impulse at relative cycle 0.
		seen := -1
		for c := 0; c < stages+6; c++ {
			in := map[string]bool{"d": c == 0}
			if _, err := sim.Step(in); err != nil {
				t.Fatal(err)
			}
			if sim.Value(piped.Outputs()[0]) && seen < 0 {
				seen = c
			}
		}
		if seen != stages {
			t.Fatalf("stages=%d: impulse emerged at cycle %d, want %d", stages, seen, stages)
		}
	}
}
