package pipeline

import (
	"math"

	"repro/internal/netlist"
	"repro/internal/units"
)

// refineStages performs retiming-lite on a stage assignment: gates at the
// head or tail of the worst stage are moved across the boundary when that
// reduces the maximum per-stage delay estimate. This is the paper's
// custom capability of "balancing the logic in pipeline stages after
// placement" (section 4.1) — it runs on wire-annotated timing, unlike the
// initial cut which only quantizes arrival times.
func refineStages(n *netlist.Netlist, stageOf map[netlist.GateID]int, stages int, order []netlist.GateID) {
	if stages < 2 {
		return
	}
	delayOf := func(g *netlist.Gate) float64 {
		return float64(g.Cell.Delay(n.Load(g.Out)) + n.Net(g.Out).ExtraDelay)
	}

	// stageDelays estimates each stage's critical delay: arrival resets
	// at stage boundaries (registers launch at t=0 within the stage).
	arr := make([]float64, n.NumGates())
	stageDelays := func() []float64 {
		d := make([]float64, stages)
		for _, gid := range order {
			g := n.Gate(gid)
			s := stageOf[gid]
			worst := 0.0
			for _, fi := range n.FaninGates(gid) {
				if stageOf[fi] == s && arr[fi] > worst {
					worst = arr[fi]
				}
			}
			arr[gid] = worst + delayOf(g)
			if arr[gid] > d[s] {
				d[s] = arr[gid]
			}
		}
		return d
	}

	maxOf := func(d []float64) (int, float64) {
		wi, wv := 0, math.Inf(-1)
		for i, v := range d {
			if v > wv {
				wi, wv = i, v
			}
		}
		return wi, wv
	}

	// Cap the number of accepted moves: each accepted move costs a few
	// full-netlist evaluations, and balance converges quickly.
	moves := 4 * n.NumGates()
	if moves > 120 {
		moves = 120
	}
	for iter := 0; iter < moves; iter++ {
		d := stageDelays()
		worst, worstVal := maxOf(d)
		improved := false
		// Head candidates: every fanin in an earlier stage -> can move
		// back. Tail candidates: every fanout in a later stage (or a
		// primary output / register) -> can move forward.
		for _, gid := range order {
			if stageOf[gid] != worst {
				continue
			}
			g := n.Gate(gid)
			headOK := worst > 0
			for _, fi := range n.FaninGates(gid) {
				if stageOf[fi] >= worst {
					headOK = false
					break
				}
			}
			tailOK := worst < stages-1
			if tailOK {
				out := n.Net(g.Out)
				if out.IsOutput || len(out.RegSinks) > 0 {
					tailOK = false
				}
				for _, fo := range n.FanoutGates(gid) {
					if stageOf[fo] <= worst {
						tailOK = false
						break
					}
				}
			}
			try := func(to int) bool {
				stageOf[gid] = to
				nd := stageDelays()
				_, nv := maxOf(nd)
				if nv < worstVal-1e-12 {
					return true
				}
				stageOf[gid] = worst
				return false
			}
			if headOK && try(worst-1) {
				improved = true
				break
			}
			if tailOK && try(worst+1) {
				improved = true
				break
			}
		}
		if !improved {
			return
		}
	}
}

// RefinedImbalance reports the ratio of worst to mean stage delay for a
// delays slice — 1.0 is perfect balance.
func RefinedImbalance(d []units.Tau) float64 {
	if len(d) == 0 {
		return 1
	}
	sum, worst := 0.0, 0.0
	for _, v := range d {
		sum += float64(v)
		if float64(v) > worst {
			worst = float64(v)
		}
	}
	mean := sum / float64(len(d))
	if mean == 0 {
		return 1
	}
	return worst / mean
}
