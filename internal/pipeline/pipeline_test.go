package pipeline

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
)

// deepComb builds a deep combinational netlist (no registers): a few
// chained CLA slices' worth of logic via the ALU generator is registered,
// so use a bare inverter/nand ladder with real structure instead.
func deepComb(t *testing.T, depth int) *netlist.Netlist {
	t.Helper()
	lib := cell.RichASIC()
	n := netlist.New("deep")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x, y := a, b
	for i := 0; i < depth; i++ {
		nx := n.MustGate(lib.Smallest(cell.FuncNand2), x, y)
		ny := n.MustGate(lib.Smallest(cell.FuncXor2), y, nx)
		x, y = nx, ny
	}
	n.MarkOutput(x)
	n.MarkOutput(y)
	return n
}

func ff() *cell.SeqCell { return cell.ASICFlipFlop(2) }

func TestPipelineStructure(t *testing.T) {
	n := deepComb(t, 30)
	p, err := Pipeline(n, Options{Stages: 4, Seq: ff()})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if p.NumRegs() == 0 {
		t.Fatal("no registers inserted")
	}
	// Gate stages must be monotone along edges.
	for _, g := range p.Gates() {
		for _, fi := range p.FaninGates(g.ID) {
			if p.Gate(fi).Stage > g.Stage {
				t.Fatalf("stage decreases along edge %d->%d", fi, g.ID)
			}
		}
	}
	// All primary outputs must be register Q pins (aligned capture).
	for _, id := range p.Outputs() {
		if p.Net(id).DriverReg == netlist.None {
			t.Fatal("output not captured by a register")
		}
	}
}

func TestPipelineRejectsRegisteredInput(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pipeline(n, Options{Stages: 2, Seq: ff()}); err == nil {
		t.Fatal("registered netlist must be rejected")
	}
}

func TestPipelineValidatesOptions(t *testing.T) {
	n := deepComb(t, 5)
	if _, err := Pipeline(n, Options{Stages: 0, Seq: ff()}); err == nil {
		t.Fatal("zero stages must be rejected")
	}
	if _, err := Pipeline(n, Options{Stages: 2}); err == nil {
		t.Fatal("missing sequential cell must be rejected")
	}
}

func TestDeeperPipelinesShortenCycle(t *testing.T) {
	n := deepComb(t, 40)
	clk := sta.ASICClocking()
	var prev units.Tau = math.MaxFloat64
	for _, stages := range []int{1, 2, 4, 8} {
		rep, _, err := Evaluate(n, Options{Stages: stages, Seq: ff()}, clk, false)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycle >= prev && stages > 1 {
			t.Fatalf("%d stages did not shorten the cycle: %.1f vs %.1f FO4",
				stages, rep.Cycle.FO4(), prev.FO4())
		}
		prev = rep.Cycle
	}
}

func TestPipeliningSpeedupBand(t *testing.T) {
	// Paper section 4: a five-stage ASIC pipeline with ~30% overhead
	// comes out ~3.8x faster; four custom stages at ~20% overhead
	// ~3.4x. With ASIC registers and skew our 5-stage cut should land
	// in the 3-4.5x band on a deep datapath.
	n := deepComb(t, 60)
	rep, _, err := Evaluate(n, Options{Stages: 5, Seq: ff()}, sta.ASICClocking(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup < 3.0 || rep.Speedup > 4.6 {
		t.Fatalf("5-stage speedup = %.2f, want in [3.0, 4.6] (paper: ~3.8)", rep.Speedup)
	}
}

func TestBalancedBeatsNaive(t *testing.T) {
	// An imbalanced circuit: cheap gates early, expensive gates late.
	lib := cell.RichASIC()
	n := netlist.New("imb")
	x := n.AddInput("a")
	for i := 0; i < 20; i++ {
		x = n.MustGate(lib.Smallest(cell.FuncInv), x)
	}
	for i := 0; i < 10; i++ {
		x = n.MustGate(lib.Smallest(cell.FuncXor2), x, x)
	}
	n.MarkOutput(x)

	clk := sta.ASICClocking()
	bal, _, err := Evaluate(n, Options{Stages: 3, Seq: ff(), Method: BalancedDelay}, clk, false)
	if err != nil {
		t.Fatal(err)
	}
	nai, _, err := Evaluate(n, Options{Stages: 3, Seq: ff(), Method: NaiveLevels}, clk, false)
	if err != nil {
		t.Fatal(err)
	}
	if bal.Cycle > nai.Cycle {
		t.Fatalf("balanced cut (%.1f FO4) slower than naive (%.1f FO4)", bal.Cycle.FO4(), nai.Cycle.FO4())
	}
}

func TestStageDelaysCoverAllStages(t *testing.T) {
	n := deepComb(t, 40)
	const stages = 4
	p, err := Pipeline(n, Options{Stages: stages, Seq: ff()})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sta.Analyze(p, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := StageDelays(p, r, stages)
	for i, v := range d {
		if v <= 0 {
			t.Fatalf("stage %d has zero delay", i)
		}
	}
}

func TestBorrowedCycleBounds(t *testing.T) {
	clk := sta.Clocking{}
	stages := []units.Tau{10, 30, 10, 10}
	ffc := FFCycle(stages, clk)
	bor := BorrowedCycle(stages, clk)
	if bor > ffc {
		t.Fatalf("borrowing (%.1f) cannot be slower than FF (%.1f)", float64(bor), float64(ffc))
	}
	// Ideal borrowing is bounded below by the global average.
	if float64(bor) < 15 {
		t.Fatalf("borrowed cycle %.1f below global average 15", float64(bor))
	}
	// And for this profile the max window average is (10+30)/2 = 20.
	if math.Abs(float64(bor)-20) > 1e-6 {
		t.Fatalf("borrowed cycle = %.1f, want 20", float64(bor))
	}
}

func TestBorrowedCycleProperty(t *testing.T) {
	f := func(raw [6]uint8) bool {
		stages := make([]units.Tau, 0, 6)
		for _, v := range raw {
			stages = append(stages, units.Tau(1+float64(v%40)))
		}
		clk := sta.Clocking{}
		ffc := FFCycle(stages, clk)
		bor := BorrowedCycle(stages, clk)
		sum := units.Tau(0)
		for _, s := range stages {
			sum += s
		}
		avg := float64(sum) / float64(len(stages))
		return bor <= ffc && float64(bor) >= avg-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatchBorrowingBeatsFFOnImbalance(t *testing.T) {
	n := deepComb(t, 50)
	clk := sta.ASICClocking()
	ffRep, _, err := Evaluate(n, Options{Stages: 5, Seq: ff()}, clk, false)
	if err != nil {
		t.Fatal(err)
	}
	latch := cell.TransparentLatch(2)
	borRep, _, err := Evaluate(n, Options{Stages: 5, Seq: latch}, clk, true)
	if err != nil {
		t.Fatal(err)
	}
	if borRep.Cycle >= ffRep.Cycle {
		t.Fatalf("latch borrowing (%.1f FO4) should beat FF clocking (%.1f FO4)",
			borRep.Cycle.FO4(), ffRep.Cycle.FO4())
	}
}

func TestWorkloadCPI(t *testing.T) {
	dsp := DSPWorkload()
	bus := BusInterfaceWorkload()
	if dsp.CPI(8) >= bus.CPI(8) {
		t.Fatal("a bus interface must stall more than a DSP stream")
	}
	// CPI grows with depth when hazards exist.
	if bus.CPI(10) <= bus.CPI(2) {
		t.Fatal("hazard CPI must grow with pipeline depth")
	}
	// And stays 1 for a perfect workload.
	perfect := Workload{ILP: 1}
	if perfect.CPI(10) != 1 {
		t.Fatalf("hazard-free CPI = %g, want 1", perfect.CPI(10))
	}
}

func TestBestDepthDependsOnWorkload(t *testing.T) {
	// Cycle model: cycle(n) = comb/n + overhead.
	cycleAt := func(n int) float64 { return 60/float64(n) + 6 }
	dspN, _ := DSPWorkload().BestDepth(16, cycleAt)
	busN, _ := BusInterfaceWorkload().BestDepth(16, cycleAt)
	if dspN <= busN {
		t.Fatalf("DSP best depth (%d) should exceed bus-interface best depth (%d)", dspN, busN)
	}
	if busN > 4 {
		t.Fatalf("bus interface best depth = %d, want shallow (<=4)", busN)
	}
	if dspN < 8 {
		t.Fatalf("DSP best depth = %d, want deep (>=8)", dspN)
	}
}

func TestThroughputNormalization(t *testing.T) {
	w := IntegerWorkload()
	if got := w.Throughput(1, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("throughput(1,1) = %g, want 1", got)
	}
}

func TestAlignmentChains(t *testing.T) {
	// A net produced in stage 0 and consumed in the final stage must be
	// carried by a register chain, not wired across stages.
	lib := cell.RichASIC()
	n := netlist.New("skip")
	a := n.AddInput("a")
	x := a
	for i := 0; i < 30; i++ {
		x = n.MustGate(lib.Smallest(cell.FuncXor2), x, x)
	}
	// y is cheap and feeds the final gate together with deep x.
	y := n.MustGate(lib.Smallest(cell.FuncInv), a)
	z := n.MustGate(lib.Smallest(cell.FuncNand2), x, y)
	n.MarkOutput(z)
	p, err := Pipeline(n, Options{Stages: 4, Seq: ff()})
	if err != nil {
		t.Fatal(err)
	}
	// The inverter output must reach stage 3 via >= 3 registers.
	if p.NumRegs() < 4 { // 3 alignment + 1 output capture at minimum
		t.Fatalf("expected alignment registers, got %d regs total", p.NumRegs())
	}
	// Every gate's inputs must come from its own stage (reg Q of its
	// stage or same-stage gate or PI in stage 0).
	for _, g := range p.Gates() {
		for _, in := range g.In {
			nt := p.Net(in)
			switch {
			case nt.IsInput:
				if g.Stage != 0 {
					t.Fatalf("gate in stage %d reads a primary input directly", g.Stage)
				}
			case nt.Driver != netlist.None:
				if p.Gate(nt.Driver).Stage != g.Stage {
					t.Fatalf("cross-stage wire without register: %d -> %d",
						p.Gate(nt.Driver).Stage, g.Stage)
				}
			case nt.DriverReg != netlist.None:
				if p.Reg(nt.DriverReg).Stage != g.Stage {
					t.Fatalf("register of stage %d feeds gate of stage %d",
						p.Reg(nt.DriverReg).Stage, g.Stage)
				}
			}
		}
	}
}
