package pipeline

import (
	"fmt"
	"math"
)

// Workload characterizes how pipelinable a task stream is — the paper's
// section 4.1 point that pipelining only pays when multiple tasks can be
// in flight. A bus interface that consumes fresh primary inputs every
// cycle and branches constantly gains nothing from a faster clock it
// cannot fill.
type Workload struct {
	// DependentFrac is the fraction of operations that must wait for
	// the immediately preceding operation's result (back-to-back data
	// dependences that forwarding cannot fully hide once the dependent
	// operations sit more than one stage apart).
	DependentFrac float64
	// BranchFrac is the fraction of operations that are branches.
	BranchFrac float64
	// MispredictRate is the fraction of branches predicted wrongly.
	MispredictRate float64
	// ILP is the machine's sustainable issue width on this workload
	// (1.0 for a single-issue pipeline).
	ILP float64
}

// DSPWorkload is highly parallel streaming data: deep pipelining wins.
func DSPWorkload() Workload {
	return Workload{DependentFrac: 0.05, BranchFrac: 0.02, MispredictRate: 0.05, ILP: 1}
}

// IntegerWorkload is general-purpose integer code (Alpha-class machines
// attack it with prediction and out-of-order issue).
func IntegerWorkload() Workload {
	return Workload{DependentFrac: 0.35, BranchFrac: 0.18, MispredictRate: 0.08, ILP: 1}
}

// BusInterfaceWorkload is the paper's pathological case: every cycle
// depends on fresh inputs, and control flow branches constantly.
func BusInterfaceWorkload() Workload {
	return Workload{DependentFrac: 0.9, BranchFrac: 0.4, MispredictRate: 0.25, ILP: 1}
}

// CPI returns cycles per operation for an N-stage pipeline running this
// workload: the ideal 1/ILP plus dependence stalls (which grow with the
// result latency in stages) plus branch-misprediction flushes (which
// refill the front of the pipe).
func (w Workload) CPI(stages int) float64 {
	if stages < 1 {
		stages = 1
	}
	base := 1.0 / math.Max(w.ILP, 1e-9)
	// A dependent op waits for its producer to clear the remaining
	// execute stages; with forwarding, roughly a third of the depth.
	depPenalty := w.DependentFrac * math.Max(0, float64(stages-1)) / 3
	// A mispredicted branch flushes the front end.
	brPenalty := w.BranchFrac * w.MispredictRate * math.Max(0, float64(stages-1))
	return base + depPenalty + brPenalty
}

// Throughput returns relative operations/second for an N-stage pipeline
// with the given cycle time, normalized so that (1 stage, cycle=1) is 1.
func (w Workload) Throughput(stages int, cycleRel float64) float64 {
	if cycleRel <= 0 {
		return math.Inf(1)
	}
	return 1 / (w.CPI(stages) * cycleRel) * w.CPI(1)
}

// BestDepth sweeps pipeline depths 1..maxStages with the supplied cycle
// model and returns the depth maximizing throughput — the paper's
// trade-off between issuing faster and paying hazard penalties.
func (w Workload) BestDepth(maxStages int, cycleAt func(stages int) float64) (int, float64) {
	bestN, bestT := 1, 0.0
	for n := 1; n <= maxStages; n++ {
		t := w.Throughput(n, cycleAt(n)/cycleAt(1))
		if t > bestT {
			bestN, bestT = n, t
		}
	}
	return bestN, bestT
}

func (w Workload) String() string {
	return fmt.Sprintf("workload(dep=%.0f%%, br=%.0f%%, mispred=%.0f%%)",
		100*w.DependentFrac, 100*w.BranchFrac, 100*w.MispredictRate)
}
