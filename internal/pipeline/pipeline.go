// Package pipeline implements the paper's dominant speed factor (section
// 4, x4.00): cutting a combinational netlist into N register-separated
// stages. It provides the stage-assignment algorithms (delay-balanced cuts
// vs. naive level slicing), register insertion with data-alignment chains,
// per-stage delay extraction, cycle-time computation for edge-triggered
// and latch-based (time-borrowing) clocking, and the section 4.1 workload
// model of why dependent, branchy work (bus interfaces) cannot be
// pipelined profitably.
package pipeline

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
)

// CutMethod selects how gates are assigned to stages.
type CutMethod int

const (
	// BalancedDelay places stage boundaries at equal fractions of the
	// worst-path arrival time — what careful custom retiming achieves
	// ("balance the logic in pipeline stages after placement").
	BalancedDelay CutMethod = iota
	// NaiveLevels slices by topological gate level, ignoring per-gate
	// delay — the unbalanced cut of a quick ASIC job.
	NaiveLevels
)

func (m CutMethod) String() string {
	if m == NaiveLevels {
		return "naive-levels"
	}
	return "balanced-delay"
}

// Options configures pipelining.
type Options struct {
	// Stages is the number of pipeline stages (>= 1).
	Stages int
	// Seq is the register cell to insert at stage boundaries.
	Seq *cell.SeqCell
	// Method selects the cut algorithm.
	Method CutMethod
	// Refine enables retiming-lite after the initial cut: gates are
	// moved across stage boundaries while that shortens the worst
	// stage (the custom "balance after placement" capability).
	Refine bool
}

// Pipeline cuts the combinational netlist n into opt.Stages stages,
// returning a new netlist with registers inserted at stage boundaries
// (including data-alignment register chains on signals that skip stages,
// and capture registers aligning every output to the final stage).
//
// The input must be purely combinational; registered designs should be
// pipelined between their existing register boundaries instead.
func Pipeline(n *netlist.Netlist, opt Options) (*netlist.Netlist, error) {
	if n.NumRegs() != 0 {
		return nil, fmt.Errorf("pipeline: %s already has registers", n.Name)
	}
	if opt.Stages < 1 {
		return nil, fmt.Errorf("pipeline: stage count %d < 1", opt.Stages)
	}
	if opt.Seq == nil {
		return nil, fmt.Errorf("pipeline: no sequential cell given")
	}
	stageOf, err := assignStages(n, opt)
	if err != nil {
		return nil, err
	}
	if opt.Refine {
		order, err := n.Levelize()
		if err != nil {
			return nil, err
		}
		refineStages(n, stageOf, opt.Stages, order)
	}

	out := netlist.New(fmt.Sprintf("%s_p%d", n.Name, opt.Stages))

	// Map from (original net, stage) to the new net carrying that value
	// at that stage. Stage s means "as seen by logic in stage s".
	type key struct {
		net   netlist.NetID
		stage int
	}
	have := map[key]netlist.NetID{}

	for _, id := range n.Inputs() {
		have[key{id, 0}] = out.AddInput(n.Net(id).Name)
	}

	// atStage returns the new net carrying original net `id` for use in
	// stage s, inserting alignment registers as needed. The base stage
	// of a net is its driver's stage (0 for PIs).
	var atStage func(id netlist.NetID, s int) (netlist.NetID, error)
	atStage = func(id netlist.NetID, s int) (netlist.NetID, error) {
		if net, ok := have[key{id, s}]; ok {
			return net, nil
		}
		if s <= 0 {
			return netlist.None, fmt.Errorf("pipeline: net %s needed before it is produced", n.Net(id).Name)
		}
		// Find the nearest earlier stage where the value exists.
		prev, err := atStage(id, s-1) // recursion bottoms out at base stage
		if err != nil {
			return netlist.None, err
		}
		q := out.AddReg(opt.Seq, prev)
		r := out.Reg(out.Net(q).DriverReg)
		r.Stage = s
		// Alignment registers sit with the logic producing the value,
		// so they do not add floorplan hops of their own.
		r.Block = blockOf(out, prev)
		out.Net(q).Name = fmt.Sprintf("%s_s%d", n.Net(id).Name, s)
		have[key{id, s}] = q
		return q, nil
	}

	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	for _, gid := range order {
		g := n.Gate(gid)
		s := stageOf[gid]
		ins := make([]netlist.NetID, len(g.In))
		for i, in := range g.In {
			net, err := atStage(in, s)
			if err != nil {
				return nil, err
			}
			ins[i] = net
		}
		newOut, err := out.AddGate(g.Cell, ins...)
		if err != nil {
			return nil, err
		}
		ng := out.Gate(out.Net(newOut).Driver)
		ng.Block = g.Block
		ng.Stage = s
		have[key{g.Out, s}] = newOut
	}

	// Outputs: align everything to the final stage and capture it.
	last := opt.Stages - 1
	for _, id := range n.Outputs() {
		net, err := atStage(id, last)
		if err != nil {
			return nil, err
		}
		q := out.AddReg(opt.Seq, net)
		r := out.Reg(out.Net(q).DriverReg)
		r.Stage = opt.Stages
		r.Block = blockOf(out, net)
		out.MarkOutput(q)
		out.Net(q).PortLoad = n.Net(id).PortLoad
	}
	if err := out.Check(); err != nil {
		return nil, fmt.Errorf("pipeline: produced invalid netlist: %w", err)
	}
	return out, nil
}

// blockOf returns the floorplan block of a net's driver (gate or
// register), or the empty block for primary inputs.
func blockOf(n *netlist.Netlist, id netlist.NetID) string {
	nt := n.Net(id)
	if nt.Driver != netlist.None {
		return n.Gate(nt.Driver).Block
	}
	if nt.DriverReg != netlist.None {
		return n.Reg(nt.DriverReg).Block
	}
	return ""
}

// assignStages maps every gate to a stage, monotone along edges.
func assignStages(n *netlist.Netlist, opt Options) (map[netlist.GateID]int, error) {
	stageOf := make(map[netlist.GateID]int, n.NumGates())
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	switch opt.Method {
	case NaiveLevels:
		level := make(map[netlist.GateID]int)
		maxLevel := 0
		for _, gid := range order {
			l := 0
			for _, fi := range n.FaninGates(gid) {
				if level[fi]+1 > l {
					l = level[fi] + 1
				}
			}
			level[gid] = l
			if l > maxLevel {
				maxLevel = l
			}
		}
		span := float64(maxLevel + 1)
		for gid, l := range level {
			s := int(float64(l) / span * float64(opt.Stages))
			if s >= opt.Stages {
				s = opt.Stages - 1
			}
			stageOf[gid] = s
		}
	default: // BalancedDelay
		r, err := sta.Analyze(n, sta.Options{})
		if err != nil {
			return nil, err
		}
		total := float64(r.WorstComb)
		if total <= 0 {
			total = 1
		}
		for _, gid := range order {
			g := n.Gate(gid)
			a := float64(r.Arrival[g.Out])
			s := int(a / total * float64(opt.Stages))
			if s >= opt.Stages {
				s = opt.Stages - 1
			}
			// Monotonicity along edges.
			for _, fi := range n.FaninGates(gid) {
				if stageOf[fi] > s {
					s = stageOf[fi]
				}
			}
			stageOf[gid] = s
		}
	}
	return stageOf, nil
}

// StageDelays extracts, from a timing analysis of a pipelined netlist, the
// worst endpoint delay (including launch clock-to-Q and capture setup) of
// each stage 0..N-1. Registers with Stage == s capture the logic of stage
// s-1; primary outputs belong to the final stage.
func StageDelays(n *netlist.Netlist, r *sta.Result, stages int) []units.Tau {
	d := make([]units.Tau, stages)
	bump := func(s int, t units.Tau) {
		if s >= 0 && s < stages && t > d[s] {
			d[s] = t
		}
	}
	for _, reg := range n.Regs() {
		bump(reg.Stage-1, r.Arrival[reg.D]+reg.Cell.Setup)
	}
	for _, id := range n.Outputs() {
		nt := n.Net(id)
		if nt.DriverReg != netlist.None {
			continue // captured output: already counted via the register
		}
		bump(stages-1, r.Arrival[id])
	}
	return d
}

// FFCycle is the minimum cycle under edge-triggered clocking: the worst
// stage delay divided by the skew headroom.
func FFCycle(stage []units.Tau, clk sta.Clocking) units.Tau {
	worst := units.Tau(0)
	for _, d := range stage {
		if d > worst {
			worst = d
		}
	}
	return units.Tau(float64(worst+clk.JitterTau) / (1 - clk.SkewFrac))
}

// BorrowedCycle is the minimum cycle under transparent-latch clocking
// with time borrowing of up to half a cycle across each internal stage
// boundary (the two-phase latch budget). A long stage may slip its data
// past the nominal boundary as long as downstream slack absorbs it; the
// pipeline's entry and exit are hard boundaries. Multi-phase clocking
// with time borrowing is exactly what the paper says ASIC tools have
// problems with (section 4.1).
//
// The minimum feasible cycle is found by binary search on the cumulative
// arrival recurrence A_k = max(k*C, A_{k-1}) + d_k with the constraints
// A_k <= (k+1)*C + C/2 internally and A_{N-1} <= N*C at the exit.
func BorrowedCycle(stage []units.Tau, clk sta.Clocking) units.Tau {
	if len(stage) == 0 {
		return 0
	}
	feasible := func(c float64) bool {
		if c <= 0 {
			return false
		}
		arrival := 0.0
		for k, d := range stage {
			start := float64(k) * c
			if arrival > start {
				start = arrival
			}
			arrival = start + float64(d)
			limit := float64(k+1)*c + c/2
			if k == len(stage)-1 {
				limit = float64(len(stage)) * c
			}
			if arrival > limit {
				return false
			}
		}
		return true
	}
	// Bracket: the FF cycle is always feasible; the global average is a
	// lower bound.
	hi := float64(FFCycle(stage, sta.Clocking{}))
	lo := 0.0
	for _, d := range stage {
		lo += float64(d)
	}
	lo /= float64(len(stage))
	for i := 0; i < 60 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return units.Tau((hi + float64(clk.JitterTau)) / (1 - clk.SkewFrac))
}

// Report summarizes a pipelining run.
type Report struct {
	Stages      int
	Method      CutMethod
	StageDelays []units.Tau
	// CombDelay is the unpipelined end-to-end logic delay.
	CombDelay units.Tau
	// Cycle is the achievable cycle (FF clocking unless borrowing).
	Cycle units.Tau
	// Speedup is combinational delay over cycle: the throughput gain
	// versus an unpipelined implementation clocked at its full delay
	// plus one register overhead.
	Speedup float64
	// OverheadFrac is the fraction of the cycle spent outside logic.
	OverheadFrac float64
	// Regs is the number of registers in the pipelined netlist.
	Regs int
}

func (r Report) String() string {
	return fmt.Sprintf("%d stages (%v): cycle %.1f FO4, speedup %.2fx, overhead %.0f%%, %d regs",
		r.Stages, r.Method, r.Cycle.FO4(), r.Speedup, 100*r.OverheadFrac, r.Regs)
}

// Evaluate pipelines a combinational netlist at the given depth and
// reports achievable cycle time and speedup under the clocking.
func Evaluate(n *netlist.Netlist, opt Options, clk sta.Clocking, borrow bool) (Report, *netlist.Netlist, error) {
	base, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return Report{}, nil, err
	}
	p, err := Pipeline(n, opt)
	if err != nil {
		return Report{}, nil, err
	}
	r, err := sta.Analyze(p, sta.Options{})
	if err != nil {
		return Report{}, nil, err
	}
	stages := StageDelays(p, r, opt.Stages)
	var cycle units.Tau
	if borrow {
		cycle = BorrowedCycle(stages, clk)
	} else {
		cycle = FFCycle(stages, clk)
	}

	// The unpipelined reference also pays one register overhead and the
	// same skew: a single-stage "pipeline".
	ref := units.Tau(float64(base.WorstComb+opt.Seq.Setup+opt.Seq.ClkToQ) / (1 - clk.SkewFrac))

	worstLogic := units.Tau(0)
	for _, d := range stages {
		if d > worstLogic {
			worstLogic = d
		}
	}
	rep := Report{
		Stages:      opt.Stages,
		Method:      opt.Method,
		StageDelays: stages,
		CombDelay:   base.WorstComb,
		Cycle:       cycle,
		Speedup:     float64(ref) / float64(cycle),
		Regs:        p.NumRegs(),
	}
	if cycle > 0 {
		// Logic content of the limiting stage, excluding launch/capture
		// overhead.
		rep.OverheadFrac = float64(cycle-(worstLogic-opt.Seq.Setup-opt.Seq.ClkToQ)) / float64(cycle)
	}
	return rep, p, nil
}
