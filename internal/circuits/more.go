package circuits

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// WallaceMultiplier builds a w x w multiplier with Wallace-tree reduction:
// unlike the row-by-row array multiplier, every reduction level compresses
// all columns in parallel with 3:2 counters, giving log-depth reduction —
// the custom-datapath structure.
func WallaceMultiplier(lib *cell.Library, w int) (*Multiplier, error) {
	n := netlist.New(fmt.Sprintf("wallace%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	m := &Multiplier{N: n}
	m.A = e.Words("a", w)
	m.B = e.Words("b", w)

	cols := make([][]netlist.NetID, 2*w+2)
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			cols[i+j] = append(cols[i+j], e.And2(m.A[j], m.B[i]))
		}
	}
	// Wallace: per level, compress every column simultaneously: groups
	// of three bits feed a full adder, pairs feed a half adder, strays
	// pass through.
	for {
		busy := false
		for _, c := range cols {
			if len(c) > 2 {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		next := make([][]netlist.NetID, len(cols))
		for k := 0; k < len(cols); k++ {
			c := cols[k]
			i := 0
			for ; i+2 < len(c); i += 3 {
				s, cy := e.FullAdder(c[i], c[i+1], c[i+2])
				next[k] = append(next[k], s)
				if k+1 < len(cols) {
					next[k+1] = append(next[k+1], cy)
				}
			}
			if i+1 < len(c) {
				s, cy := e.HalfAdder(c[i], c[i+1])
				next[k] = append(next[k], s)
				if k+1 < len(cols) {
					next[k+1] = append(next[k+1], cy)
				}
				i += 2
			}
			for ; i < len(c); i++ {
				next[k] = append(next[k], c[i])
			}
		}
		cols = next
	}
	// Final carry-propagate add over the two rows.
	carry := e.constZero()
	for k := 0; k < 2*w; k++ {
		switch len(cols[k]) {
		case 0:
			m.Product = append(m.Product, carry)
			carry = e.constZero()
		case 1:
			s, c := e.HalfAdder(cols[k][0], carry)
			m.Product = append(m.Product, s)
			carry = c
		default:
			s, c := e.FullAdder(cols[k][0], cols[k][1], carry)
			m.Product = append(m.Product, s)
			carry = c
		}
	}
	e.Outputs(m.Product)
	return m, nil
}

// Comparator bundles an unsigned magnitude comparator.
type Comparator struct {
	N      *netlist.Netlist
	A, B   []netlist.NetID
	EQ, GT netlist.NetID
}

// NewComparator builds a w-bit unsigned comparator producing A==B and
// A>B, using the standard most-significant-difference chain.
func NewComparator(lib *cell.Library, w int) (*Comparator, error) {
	n := netlist.New(fmt.Sprintf("cmp%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	c := &Comparator{N: n}
	c.A = e.Words("a", w)
	c.B = e.Words("b", w)

	// eq[i] = a[i] XNOR b[i]; GT is the most-significant-difference
	// chain: OR over i of (a[i] AND NOT b[i] AND all-higher-bits-equal).
	eqs := make([]netlist.NetID, w)
	for i := 0; i < w; i++ {
		eqs[i] = e.Xnor2(c.A[i], c.B[i])
	}
	prefixEq := e.constOne() // AND of eq[j] for j > i, descending
	var gtTerms []netlist.NetID
	for i := w - 1; i >= 0; i-- {
		gtTerms = append(gtTerms, e.And(c.A[i], e.Inv(c.B[i]), prefixEq))
		prefixEq = e.And2(prefixEq, eqs[i])
	}
	c.EQ = prefixEq // after the loop: AND of every eq bit
	c.GT = e.Or(gtTerms...)
	n.MarkOutput(c.EQ)
	n.MarkOutput(c.GT)
	n.Net(c.EQ).Name = "eq"
	n.Net(c.GT).Name = "gt"
	return c, nil
}

// PriorityEncoder bundles a one-hot priority encoder.
type PriorityEncoder struct {
	N     *netlist.Netlist
	In    []netlist.NetID
	Out   []netlist.NetID // binary index of the highest asserted input
	Valid netlist.NetID
}

// NewPriorityEncoder builds a w-input (w a power of two) priority encoder:
// the binary index of the highest set request line, the core of the
// arbiters that bus-interface logic is made of.
func NewPriorityEncoder(lib *cell.Library, w int) (*PriorityEncoder, error) {
	if w&(w-1) != 0 || w < 2 {
		return nil, fmt.Errorf("circuits: priority encoder width must be a power of two >= 2, got %d", w)
	}
	n := netlist.New(fmt.Sprintf("prienc%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	p := &PriorityEncoder{N: n}
	p.In = e.Words("r", w)

	// highest[i]: r[i] AND none of r[i+1..w-1].
	highest := make([]netlist.NetID, w)
	noneAbove := e.constOne()
	for i := w - 1; i >= 0; i-- {
		highest[i] = e.And2(p.In[i], noneAbove)
		if i > 0 {
			noneAbove = e.And2(noneAbove, e.Inv(p.In[i]))
		}
	}
	bits := 0
	for 1<<bits < w {
		bits++
	}
	for b := 0; b < bits; b++ {
		var terms []netlist.NetID
		for i := 0; i < w; i++ {
			if i&(1<<b) != 0 {
				terms = append(terms, highest[i])
			}
		}
		bit := e.Or(terms...)
		p.Out = append(p.Out, bit)
		n.MarkOutput(bit)
		n.Net(bit).Name = fmt.Sprintf("y[%d]", b)
	}
	p.Valid = e.Or(p.In...)
	n.MarkOutput(p.Valid)
	n.Net(p.Valid).Name = "valid"
	return p, nil
}

// constOne returns a shared constant-one primary input.
func (e *Emitter) constOne() netlist.NetID {
	for _, id := range e.N.Inputs() {
		if e.N.Net(id).Name == "const1" {
			return id
		}
	}
	return e.N.AddInput("const1")
}

// LFSR bundles a linear-feedback shift register.
type LFSR struct {
	N    *netlist.Netlist
	Taps []int
	Out  netlist.NetID
}

// NewLFSR builds a w-bit Fibonacci LFSR with the given tap positions
// (bit indices XORed into the feedback). A sequential workload for the
// simulator and clocking experiments: every cycle depends on the last,
// the paper's archetype of unpipelinable logic.
func NewLFSR(lib *cell.Library, w int, taps []int) (*LFSR, error) {
	if w < 2 || len(taps) == 0 {
		return nil, fmt.Errorf("circuits: LFSR needs width >= 2 and taps")
	}
	for _, tp := range taps {
		if tp < 0 || tp >= w {
			return nil, fmt.Errorf("circuits: tap %d out of range", tp)
		}
	}
	n := netlist.New(fmt.Sprintf("lfsr%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	ff := lib.DefaultSeq(2)
	if ff == nil {
		return nil, fmt.Errorf("circuits: library %s has no sequential cells", lib.Name)
	}
	// Seed input lets the simulator inject a nonzero state: the
	// feedback ORs in a "seed" line on bit 0.
	seed := n.AddInput("seed")

	// Unrolled-loop construction: state enters as register Q nets that
	// are wired after the feedback logic exists.
	qNets := make([]netlist.NetID, w)
	for i := range qNets {
		qNets[i] = n.AllocNet(fmt.Sprintf("q%d", i))
	}
	fb := qNets[taps[0]]
	for _, tp := range taps[1:] {
		fb = e.Xor2(fb, qNets[tp])
	}
	fb = e.Or2(fb, seed)

	// Next state: shift up, feedback into bit 0.
	for i := w - 1; i >= 1; i-- {
		if _, err := n.AddRegTo(ff, qNets[i-1], qNets[i]); err != nil {
			return nil, err
		}
	}
	if _, err := n.AddRegTo(ff, fb, qNets[0]); err != nil {
		return nil, err
	}
	out := qNets[w-1]
	n.MarkOutput(out)
	n.Net(out).Name = "out"
	return &LFSR{N: n, Taps: taps, Out: out}, nil
}
