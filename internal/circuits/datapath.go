package circuits

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Multiplier bundles the nets of a generated multiplier.
type Multiplier struct {
	N       *netlist.Netlist
	A, B    []netlist.NetID
	Product []netlist.NetID
}

// ArrayMultiplier builds a w x w carry-save array multiplier with a final
// ripple row: the regular datapath structure the paper says custom tiling
// lays out best.
func ArrayMultiplier(lib *cell.Library, w int) (*Multiplier, error) {
	n := netlist.New(fmt.Sprintf("mult%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	m := &Multiplier{N: n}
	m.A = e.Words("a", w)
	m.B = e.Words("b", w)

	// Column-based carry-save reduction: cols[k] holds the bits of
	// weight 2^k still to be summed.
	// Two spare upper columns absorb structurally generated (logically
	// zero) carries out of the top product bit.
	cols := make([][]netlist.NetID, 2*w+2)
	for i := 0; i < w; i++ {
		for j := 0; j < w; j++ {
			cols[i+j] = append(cols[i+j], e.And2(m.A[j], m.B[i]))
		}
	}
	for {
		reduced := false
		for k := 0; k < len(cols)-1; k++ {
			for len(cols[k]) >= 3 {
				a3, b3, c3 := cols[k][0], cols[k][1], cols[k][2]
				cols[k] = cols[k][3:]
				s, c := e.FullAdder(a3, b3, c3)
				cols[k] = append(cols[k], s)
				cols[k+1] = append(cols[k+1], c)
				reduced = true
			}
		}
		if !reduced {
			break
		}
	}

	// Final carry-propagate row: ripple across the two remaining rows.
	carry := e.constZero()
	for k := 0; k < 2*w; k++ {
		switch len(cols[k]) {
		case 0:
			m.Product = append(m.Product, carry)
			carry = e.constZero()
		case 1:
			s, c := e.HalfAdder(cols[k][0], carry)
			m.Product = append(m.Product, s)
			carry = c
		default:
			s, c := e.FullAdder(cols[k][0], cols[k][1], carry)
			m.Product = append(m.Product, s)
			carry = c
		}
	}
	e.Outputs(m.Product)
	return m, nil
}

// constZero returns a shared constant-zero primary input (timing-ready at
// t=0, like a tied-off rail).
func (e *Emitter) constZero() netlist.NetID {
	for _, id := range e.N.Inputs() {
		if e.N.Net(id).Name == "const0" {
			return id
		}
	}
	return e.N.AddInput("const0")
}

// Shifter bundles the nets of a generated barrel shifter.
type Shifter struct {
	N   *netlist.Netlist
	In  []netlist.NetID
	Amt []netlist.NetID
	Out []netlist.NetID
}

// BarrelShifter builds a w-bit logarithmic left-rotate barrel shifter:
// log2(w) mux stages, the canonical "custom macro beats synthesis" block
// of section 7.2.
func BarrelShifter(lib *cell.Library, w int) (*Shifter, error) {
	if w&(w-1) != 0 || w == 0 {
		return nil, fmt.Errorf("circuits: barrel shifter width must be a power of two, got %d", w)
	}
	n := netlist.New(fmt.Sprintf("bshift%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	s := &Shifter{N: n}
	s.In = e.Words("d", w)
	stages := 0
	for 1<<stages < w {
		stages++
	}
	s.Amt = e.Words("amt", stages)

	cur := append([]netlist.NetID(nil), s.In...)
	for st := 0; st < stages; st++ {
		shift := 1 << st
		next := make([]netlist.NetID, w)
		for i := 0; i < w; i++ {
			rotated := cur[(i+w-shift)%w]
			next[i] = e.Mux2(cur[i], rotated, s.Amt[st])
		}
		cur = next
	}
	s.Out = cur
	e.Outputs(s.Out)
	return s, nil
}

// ALU bundles the nets of a generated arithmetic-logic unit.
type ALU struct {
	N      *netlist.Netlist
	A, B   []netlist.NetID
	Op     []netlist.NetID // 2-bit op select: 00 add, 01 and, 10 or, 11 xor
	Result []netlist.NetID
	Cout   netlist.NetID
}

// NewALU builds a w-bit ALU: a carry-lookahead add path plus bitwise
// AND/OR/XOR, merged by a result mux — a representative execution-unit
// critical path (the paper's section 9 point that a single fast element
// matters less once embedded in a whole path).
func NewALU(lib *cell.Library, w int) (*ALU, error) {
	n := netlist.New(fmt.Sprintf("alu%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	a := &ALU{N: n}
	a.A = e.Words("a", w)
	a.B = e.Words("b", w)
	a.Op = e.Words("op", 2)

	// Adder path: inline carry-lookahead over 4-bit groups.
	g := make([]netlist.NetID, w)
	p := make([]netlist.NetID, w)
	for i := 0; i < w; i++ {
		g[i] = e.And2(a.A[i], a.B[i])
		p[i] = e.Xor2(a.A[i], a.B[i])
	}
	carry := make([]netlist.NetID, w+1)
	carry[0] = e.constZero()
	for lo := 0; lo < w; lo += 4 {
		hi := lo + 4
		if hi > w {
			hi = w
		}
		for i := lo; i < hi; i++ {
			terms := []netlist.NetID{g[i]}
			for j := lo; j < i; j++ {
				ands := []netlist.NetID{g[j]}
				for k := j + 1; k <= i; k++ {
					ands = append(ands, p[k])
				}
				terms = append(terms, e.And(ands...))
			}
			ands := []netlist.NetID{carry[lo]}
			for k := lo; k <= i; k++ {
				ands = append(ands, p[k])
			}
			terms = append(terms, e.And(ands...))
			carry[i+1] = e.Or(terms...)
		}
	}
	a.Cout = carry[w]

	for i := 0; i < w; i++ {
		sum := e.Xor2(p[i], carry[i])
		andv := g[i] // a&b already computed
		orv := e.Or2(a.A[i], a.B[i])
		xorv := p[i]
		// Result mux: op[1] ? (op[0] ? xor : or) : (op[0] ? and : sum)
		lo := e.Mux2(sum, andv, a.Op[0])
		hiv := e.Mux2(orv, xorv, a.Op[0])
		a.Result = append(a.Result, e.Mux2(lo, hiv, a.Op[1]))
	}
	e.Outputs(a.Result)
	n.MarkOutput(a.Cout)
	return a, nil
}
