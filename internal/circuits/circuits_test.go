package circuits

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func checkNetlist(t *testing.T, n *netlist.Netlist) {
	t.Helper()
	if err := n.Check(); err != nil {
		t.Fatalf("%s: %v", n.Name, err)
	}
	if _, err := n.Levelize(); err != nil {
		t.Fatalf("%s: %v", n.Name, err)
	}
}

func analyze(t *testing.T, n *netlist.Netlist) *sta.Result {
	t.Helper()
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatalf("%s: %v", n.Name, err)
	}
	return r
}

func TestAdderFamiliesBuildOnAllLibraries(t *testing.T) {
	for _, lib := range []*cell.Library{cell.RichASIC(), cell.PoorASIC(), cell.Custom()} {
		for _, w := range []int{4, 16, 32} {
			if a, err := RippleCarry(lib, w); err != nil {
				t.Errorf("rca %s w%d: %v", lib.Name, w, err)
			} else {
				checkNetlist(t, a.N)
			}
			if a, err := CarryLookahead(lib, w); err != nil {
				t.Errorf("cla %s w%d: %v", lib.Name, w, err)
			} else {
				checkNetlist(t, a.N)
			}
			if a, err := CarrySelect(lib, w, 4); err != nil {
				t.Errorf("csel %s w%d: %v", lib.Name, w, err)
			} else {
				checkNetlist(t, a.N)
			}
			if a, err := KoggeStone(lib, w); err != nil {
				t.Errorf("ks %s w%d: %v", lib.Name, w, err)
			} else {
				checkNetlist(t, a.N)
			}
		}
	}
}

func TestAdderSumWidths(t *testing.T) {
	lib := cell.RichASIC()
	for _, w := range []int{8, 32} {
		for name, mk := range map[string]func() (*Adder, error){
			"rca":  func() (*Adder, error) { return RippleCarry(lib, w) },
			"cla":  func() (*Adder, error) { return CarryLookahead(lib, w) },
			"csel": func() (*Adder, error) { return CarrySelect(lib, w, 4) },
			"ks":   func() (*Adder, error) { return KoggeStone(lib, w) },
		} {
			a, err := mk()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(a.Sum) != w {
				t.Errorf("%s w%d: %d sum bits", name, w, len(a.Sum))
			}
		}
	}
}

func TestFastAddersAreShallower(t *testing.T) {
	lib := cell.RichASIC()
	w := 32
	rca, _ := RippleCarry(lib, w)
	cla, _ := CarryLookahead(lib, w)
	ks, _ := KoggeStone(lib, w)
	dr := analyze(t, rca.N).WorstComb
	dc := analyze(t, cla.N).WorstComb
	dk := analyze(t, ks.N).WorstComb
	if !(dc < dr) {
		t.Errorf("CLA (%.1f FO4) should beat ripple (%.1f FO4)", dc.FO4(), dr.FO4())
	}
	if !(dk < dr) {
		t.Errorf("Kogge-Stone (%.1f FO4) should beat ripple (%.1f FO4)", dk.FO4(), dr.FO4())
	}
	// Ripple should be dramatically slower at 32 bits: the macro-cell
	// argument of section 4.2.
	if float64(dr)/float64(dk) < 2 {
		t.Errorf("ripple/KS ratio = %.2f, want >= 2", float64(dr)/float64(dk))
	}
}

func TestCarrySelectBeatsRipple(t *testing.T) {
	lib := cell.RichASIC()
	rca, _ := RippleCarry(lib, 32)
	csel, _ := CarrySelect(lib, 32, 8)
	dr := analyze(t, rca.N).WorstComb
	ds := analyze(t, csel.N).WorstComb
	if !(ds < dr) {
		t.Errorf("carry-select (%.1f) should beat ripple (%.1f)", ds.FO4(), dr.FO4())
	}
}

func TestMultiplierBuilds(t *testing.T) {
	for _, lib := range []*cell.Library{cell.RichASIC(), cell.PoorASIC()} {
		m, err := ArrayMultiplier(lib, 8)
		if err != nil {
			t.Fatalf("%s: %v", lib.Name, err)
		}
		checkNetlist(t, m.N)
		if len(m.Product) != 16 {
			t.Fatalf("8x8 product has %d bits, want 16", len(m.Product))
		}
	}
}

func TestBarrelShifter(t *testing.T) {
	lib := cell.RichASIC()
	s, err := BarrelShifter(lib, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, s.N)
	if len(s.Amt) != 5 {
		t.Fatalf("32-bit shifter has %d select bits, want 5", len(s.Amt))
	}
	// Depth should be ~log2(w) mux stages, not O(w).
	r := analyze(t, s.N)
	if r.Depth() > 12 {
		t.Fatalf("shifter depth %d too deep for log structure", r.Depth())
	}
	if _, err := BarrelShifter(lib, 24); err == nil {
		t.Fatal("non-power-of-two width must error")
	}
}

func TestALU(t *testing.T) {
	lib := cell.RichASIC()
	a, err := NewALU(lib, 32)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, a.N)
	if len(a.Result) != 32 {
		t.Fatalf("result width %d, want 32", len(a.Result))
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	lib := cell.RichASIC()
	a, err := RandomLogic(lib, 16, 400, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomLogic(lib, 16, 400, 42)
	checkNetlist(t, a)
	if a.NumGates() != b.NumGates() || a.NumNets() != b.NumNets() {
		t.Fatal("same seed must give identical structure")
	}
	c, _ := RandomLogic(lib, 16, 400, 43)
	if c.NumNets() == a.NumNets() && c.Summary().LogicDepth == a.Summary().LogicDepth {
		// Different seeds could coincide, but both matching is unlikely;
		// tolerate only if gate mix differs.
		sa, sc := a.Summary(), c.Summary()
		same := true
		for k, v := range sa.CellsByFunc {
			if sc.CellsByFunc[k] != v {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical netlists")
		}
	}
}

func TestRandomLogicOnPoorLibrary(t *testing.T) {
	n, err := RandomLogic(cell.PoorASIC(), 12, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, n)
}

func TestBusInterfaceHasRegisteredLoop(t *testing.T) {
	lib := cell.RichASIC()
	n, err := BusInterface(lib, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, n)
	if n.NumRegs() != 8 {
		t.Fatalf("state register count = %d, want 8", n.NumRegs())
	}
}

func TestDatapathChainStagesScaleDelay(t *testing.T) {
	lib := cell.RichASIC()
	one, err := DatapathChain(lib, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	three, err := DatapathChain(lib, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, one)
	checkNetlist(t, three)
	d1 := analyze(t, one).WorstComb
	d3 := analyze(t, three).WorstComb
	if float64(d3) < 2*float64(d1) {
		t.Fatalf("3-slice chain (%.1f FO4) should be ~3x one slice (%.1f FO4)", d3.FO4(), d1.FO4())
	}
}

func TestDatapathChainBlocksAssigned(t *testing.T) {
	lib := cell.RichASIC()
	n, err := DatapathChain(lib, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	blocks := map[string]int{}
	for _, g := range n.Gates() {
		blocks[g.Block]++
	}
	for s := 0; s < 4; s++ {
		if blocks["slice"+string(rune('0'+s))] == 0 {
			t.Fatalf("slice%d has no gates", s)
		}
	}
	if blocks[""] != 0 {
		t.Fatalf("%d gates unassigned to blocks", blocks[""])
	}
}

func TestEmitterRequiresMinimumBasis(t *testing.T) {
	empty := cell.NewLibrary("empty")
	if _, err := NewEmitter(netlist.New("x"), empty); err == nil {
		t.Fatal("emitter must reject a library without INV/NAND2")
	}
}
