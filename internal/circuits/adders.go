package circuits

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Adder bundles the nets of a generated adder.
type Adder struct {
	N    *netlist.Netlist
	A, B []netlist.NetID
	Cin  netlist.NetID
	Sum  []netlist.NetID
	Cout netlist.NetID
}

// RippleCarry builds a w-bit ripple-carry adder: minimal area, carry chain
// of w full adders — the structure naive synthesis of "a + b" produces.
func RippleCarry(lib *cell.Library, w int) (*Adder, error) {
	n := netlist.New(fmt.Sprintf("rca%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	ad := &Adder{N: n}
	ad.A = e.Words("a", w)
	ad.B = e.Words("b", w)
	ad.Cin = n.AddInput("cin")
	carry := ad.Cin
	for i := 0; i < w; i++ {
		var sum netlist.NetID
		sum, carry = e.FullAdder(ad.A[i], ad.B[i], carry)
		ad.Sum = append(ad.Sum, sum)
	}
	ad.Cout = carry
	e.Outputs(ad.Sum)
	n.MarkOutput(ad.Cout)
	return ad, nil
}

// CarryLookahead builds a w-bit carry-lookahead adder with 4-bit groups:
// the classic fast-datapath macro of section 4.2. Generate/propagate terms
// collapse the carry chain to logarithmic-ish depth at the cost of wide
// gates.
func CarryLookahead(lib *cell.Library, w int) (*Adder, error) {
	n := netlist.New(fmt.Sprintf("cla%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	ad := &Adder{N: n}
	ad.A = e.Words("a", w)
	ad.B = e.Words("b", w)
	ad.Cin = n.AddInput("cin")

	// Bit-level generate and propagate.
	g := make([]netlist.NetID, w)
	p := make([]netlist.NetID, w)
	for i := 0; i < w; i++ {
		g[i] = e.And2(ad.A[i], ad.B[i])
		p[i] = e.Xor2(ad.A[i], ad.B[i])
	}

	// Carries within and across 4-bit groups.
	carry := make([]netlist.NetID, w+1)
	carry[0] = ad.Cin
	for lo := 0; lo < w; lo += 4 {
		hi := lo + 4
		if hi > w {
			hi = w
		}
		// Expand each carry in the group directly from group carry-in:
		// c[i+1] = g[i] + p[i]g[i-1] + ... + p[i..lo]*cin_group.
		for i := lo; i < hi; i++ {
			terms := make([]netlist.NetID, 0, i-lo+2)
			terms = append(terms, g[i])
			for j := lo; j < i; j++ {
				ands := []netlist.NetID{g[j]}
				for k := j + 1; k <= i; k++ {
					ands = append(ands, p[k])
				}
				terms = append(terms, e.And(ands...))
			}
			ands := []netlist.NetID{carry[lo]}
			for k := lo; k <= i; k++ {
				ands = append(ands, p[k])
			}
			terms = append(terms, e.And(ands...))
			carry[i+1] = e.Or(terms...)
		}
	}

	for i := 0; i < w; i++ {
		ad.Sum = append(ad.Sum, e.Xor2(p[i], carry[i]))
	}
	ad.Cout = carry[w]
	e.Outputs(ad.Sum)
	n.MarkOutput(ad.Cout)
	return ad, nil
}

// CarrySelect builds a w-bit carry-select adder with the given group size:
// each group computes both carry polarities speculatively and a mux picks
// the real one, trading area for a shorter critical path.
func CarrySelect(lib *cell.Library, w, group int) (*Adder, error) {
	if group < 1 {
		return nil, fmt.Errorf("circuits: carry-select group must be >= 1, got %d", group)
	}
	n := netlist.New(fmt.Sprintf("csel%d_g%d", w, group))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	ad := &Adder{N: n}
	ad.A = e.Words("a", w)
	ad.B = e.Words("b", w)
	ad.Cin = n.AddInput("cin")

	// rippleGroup adds bits [lo,hi) with the given constant-polarity carry
	// chain starting from net cin.
	rippleGroup := func(lo, hi int, cin netlist.NetID) (sums []netlist.NetID, cout netlist.NetID) {
		carry := cin
		for i := lo; i < hi; i++ {
			var s netlist.NetID
			s, carry = e.FullAdder(ad.A[i], ad.B[i], carry)
			sums = append(sums, s)
		}
		return sums, carry
	}

	// Constant nets for the speculative carries: model 0/1 with a
	// buffered copy of cin's complements is wrong; instead speculate on
	// dedicated constant inputs. Use two extra primary inputs tied to
	// constants — timing-wise they are ready at t=0, matching real
	// carry-select behaviour where both polarities start immediately.
	zero := n.AddInput("const0")
	one := n.AddInput("const1")

	carry := ad.Cin
	for lo := 0; lo < w; lo += group {
		hi := lo + group
		if hi > w {
			hi = w
		}
		if lo == 0 {
			// First group needs no speculation.
			sums, c := rippleGroup(lo, hi, carry)
			ad.Sum = append(ad.Sum, sums...)
			carry = c
			continue
		}
		s0, c0 := rippleGroup(lo, hi, zero)
		s1, c1 := rippleGroup(lo, hi, one)
		for i := range s0 {
			ad.Sum = append(ad.Sum, e.Mux2(s0[i], s1[i], carry))
		}
		carry = e.Mux2(c0, c1, carry)
	}
	ad.Cout = carry
	e.Outputs(ad.Sum)
	n.MarkOutput(ad.Cout)
	return ad, nil
}

// KoggeStone builds a w-bit Kogge-Stone parallel-prefix adder: the
// log-depth custom-datapath structure, maximal wiring, minimal logical
// depth.
func KoggeStone(lib *cell.Library, w int) (*Adder, error) {
	n := netlist.New(fmt.Sprintf("ks%d", w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	ad := &Adder{N: n}
	ad.A = e.Words("a", w)
	ad.B = e.Words("b", w)
	ad.Cin = n.AddInput("cin")

	g := make([]netlist.NetID, w)
	p := make([]netlist.NetID, w)
	for i := 0; i < w; i++ {
		g[i] = e.And2(ad.A[i], ad.B[i])
		p[i] = e.Xor2(ad.A[i], ad.B[i])
	}
	// Fold cin into bit 0: g0' = g0 + p0*cin.
	g[0] = e.Or2(g[0], e.And2(p[0], ad.Cin))

	// Prefix tree: (g,p) o (g',p') = (g + p*g', p*p').
	gp := append([]netlist.NetID(nil), g...)
	pp := append([]netlist.NetID(nil), p...)
	for d := 1; d < w; d *= 2 {
		ng := append([]netlist.NetID(nil), gp...)
		np := append([]netlist.NetID(nil), pp...)
		for i := d; i < w; i++ {
			ng[i] = e.Or2(gp[i], e.And2(pp[i], gp[i-d]))
			np[i] = e.And2(pp[i], pp[i-d])
		}
		gp, pp = ng, np
	}

	// Sums: s[i] = p[i] XOR c[i], where c[i] = gp[i-1] (carry into i).
	ad.Sum = append(ad.Sum, e.Xor2(p[0], ad.Cin))
	for i := 1; i < w; i++ {
		ad.Sum = append(ad.Sum, e.Xor2(p[i], gp[i-1]))
	}
	ad.Cout = gp[w-1]
	e.Outputs(ad.Sum)
	n.MarkOutput(ad.Cout)
	return ad, nil
}
