// Package circuits generates the gate-level workloads the experiments run
// on: adders (ripple, carry-lookahead, carry-select, Kogge-Stone), an array
// multiplier, a barrel shifter, an ALU, random control logic, a
// bus-interface state machine, and multi-stage datapaths.
//
// Generators build against whatever cell library they are handed. When the
// library lacks a function (the paper's "poor library" scenario: no dual
// polarities, no complex gates), the emitter decomposes the function into
// the gates that are available, exactly as naive synthesis would — which is
// how the library-richness penalty of section 6 arises as a measured
// outcome rather than an assumed constant.
package circuits

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Emitter builds logic functions on a netlist against a concrete library,
// decomposing functions the library lacks.
type Emitter struct {
	N   *netlist.Netlist
	Lib *cell.Library
}

// NewEmitter wraps a netlist and library. The library must at minimum
// provide INV and NAND2 (any realizable CMOS library does).
func NewEmitter(n *netlist.Netlist, lib *cell.Library) (*Emitter, error) {
	if !lib.Has(cell.FuncInv) || !lib.Has(cell.FuncNand2) {
		return nil, fmt.Errorf("circuits: library %s lacks INV/NAND2 minimum basis", lib.Name)
	}
	return &Emitter{N: n, Lib: lib}, nil
}

// gate emits the smallest library cell for f directly.
func (e *Emitter) gate(f cell.Func, in ...netlist.NetID) netlist.NetID {
	c := e.Lib.Smallest(f)
	if c == nil {
		panic(fmt.Sprintf("circuits: emitter asked for missing cell %v", f))
	}
	return e.N.MustGate(c, in...)
}

// Inv emits an inverter.
func (e *Emitter) Inv(a netlist.NetID) netlist.NetID { return e.gate(cell.FuncInv, a) }

// Buf emits a buffer (two inverters when the library has no BUF).
func (e *Emitter) Buf(a netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncBuf) {
		return e.gate(cell.FuncBuf, a)
	}
	return e.Inv(e.Inv(a))
}

// Nand2 emits a two-input NAND.
func (e *Emitter) Nand2(a, b netlist.NetID) netlist.NetID { return e.gate(cell.FuncNand2, a, b) }

// Nand emits an n-input NAND, building a tree when wide cells are missing.
func (e *Emitter) Nand(in ...netlist.NetID) netlist.NetID {
	switch len(in) {
	case 0:
		panic("circuits: NAND of nothing")
	case 1:
		return e.Inv(in[0])
	case 2:
		return e.Nand2(in[0], in[1])
	case 3:
		if e.Lib.Has(cell.FuncNand3) {
			return e.gate(cell.FuncNand3, in...)
		}
	case 4:
		if e.Lib.Has(cell.FuncNand4) {
			return e.gate(cell.FuncNand4, in...)
		}
	}
	// AND the first half, AND the second half, NAND the senses back.
	half := len(in) / 2
	return e.Nand2(e.And(in[:half]...), e.And(in[half:]...))
}

// Nor2 emits a two-input NOR, or its DeMorgan NAND form when missing.
func (e *Emitter) Nor2(a, b netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncNor2) {
		return e.gate(cell.FuncNor2, a, b)
	}
	return e.Inv(e.Nand2(e.Inv(a), e.Inv(b)))
}

// And emits an n-input AND.
func (e *Emitter) And(in ...netlist.NetID) netlist.NetID {
	switch len(in) {
	case 0:
		panic("circuits: AND of nothing")
	case 1:
		return in[0]
	case 2:
		if e.Lib.Has(cell.FuncAnd2) {
			return e.gate(cell.FuncAnd2, in...)
		}
	case 3:
		if e.Lib.Has(cell.FuncAnd3) {
			return e.gate(cell.FuncAnd3, in...)
		}
	case 4:
		if e.Lib.Has(cell.FuncAnd4) {
			return e.gate(cell.FuncAnd4, in...)
		}
	}
	if len(in) <= 4 {
		return e.Inv(e.Nand(in...))
	}
	half := len(in) / 2
	return e.And2(e.And(in[:half]...), e.And(in[half:]...))
}

// And2 emits a two-input AND.
func (e *Emitter) And2(a, b netlist.NetID) netlist.NetID { return e.And(a, b) }

// Or emits an n-input OR.
func (e *Emitter) Or(in ...netlist.NetID) netlist.NetID {
	switch len(in) {
	case 0:
		panic("circuits: OR of nothing")
	case 1:
		return in[0]
	case 2:
		if e.Lib.Has(cell.FuncOr2) {
			return e.gate(cell.FuncOr2, in...)
		}
	case 3:
		if e.Lib.Has(cell.FuncOr3) {
			return e.gate(cell.FuncOr3, in...)
		}
	case 4:
		if e.Lib.Has(cell.FuncOr4) {
			return e.gate(cell.FuncOr4, in...)
		}
	}
	if len(in) <= 4 {
		// OR = NAND of complements.
		inv := make([]netlist.NetID, len(in))
		for i, a := range in {
			inv[i] = e.Inv(a)
		}
		return e.Nand(inv...)
	}
	half := len(in) / 2
	return e.Or2(e.Or(in[:half]...), e.Or(in[half:]...))
}

// Or2 emits a two-input OR.
func (e *Emitter) Or2(a, b netlist.NetID) netlist.NetID { return e.Or(a, b) }

// Xor2 emits a two-input XOR.
func (e *Emitter) Xor2(a, b netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncXor2) {
		return e.gate(cell.FuncXor2, a, b)
	}
	if e.Lib.Has(cell.FuncXnor2) {
		return e.Inv(e.gate(cell.FuncXnor2, a, b))
	}
	// Four-NAND realization.
	nab := e.Nand2(a, b)
	return e.Nand2(e.Nand2(a, nab), e.Nand2(b, nab))
}

// Xnor2 emits a two-input XNOR.
func (e *Emitter) Xnor2(a, b netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncXnor2) {
		return e.gate(cell.FuncXnor2, a, b)
	}
	return e.Inv(e.Xor2(a, b))
}

// Mux2 emits sel ? b : a.
func (e *Emitter) Mux2(a, b, sel netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncMux2) {
		return e.gate(cell.FuncMux2, a, b, sel)
	}
	ns := e.Inv(sel)
	return e.Nand2(e.Nand2(a, ns), e.Nand2(b, sel))
}

// Maj3 emits the majority (full-adder carry) of three inputs.
func (e *Emitter) Maj3(a, b, c netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncMaj3) {
		return e.gate(cell.FuncMaj3, a, b, c)
	}
	return e.Nand(e.Nand2(a, b), e.Nand2(a, c), e.Nand2(b, c))
}

// Aoi21 emits NOT(a*b + c), decomposing when absent.
func (e *Emitter) Aoi21(a, b, c netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncAoi21) {
		return e.gate(cell.FuncAoi21, a, b, c)
	}
	return e.Nor2(e.And2(a, b), c)
}

// Oai21 emits NOT((a+b) * c), decomposing when absent.
func (e *Emitter) Oai21(a, b, c netlist.NetID) netlist.NetID {
	if e.Lib.Has(cell.FuncOai21) {
		return e.gate(cell.FuncOai21, a, b, c)
	}
	return e.Nand2(e.Or2(a, b), c)
}

// FullAdder emits sum and carry-out for a+b+cin.
func (e *Emitter) FullAdder(a, b, cin netlist.NetID) (sum, cout netlist.NetID) {
	sum = e.Xor2(e.Xor2(a, b), cin)
	cout = e.Maj3(a, b, cin)
	return sum, cout
}

// HalfAdder emits sum and carry-out for a+b.
func (e *Emitter) HalfAdder(a, b netlist.NetID) (sum, cout netlist.NetID) {
	return e.Xor2(a, b), e.And2(a, b)
}

// Words creates a named w-bit primary-input bus.
func (e *Emitter) Words(name string, w int) []netlist.NetID {
	bus := make([]netlist.NetID, w)
	for i := range bus {
		bus[i] = e.N.AddInput(fmt.Sprintf("%s[%d]", name, i))
	}
	return bus
}

// Outputs marks each net in the bus as a primary output.
func (e *Emitter) Outputs(bus []netlist.NetID) {
	for _, id := range bus {
		e.N.MarkOutput(id)
	}
}

// SetBlock tags all gates added between the returned checkpoint calls.
// Usage: mark := e.Checkpoint(); ...build...; e.SetBlock(mark, "alu").
func (e *Emitter) Checkpoint() int { return e.N.NumGates() }

// SetBlock assigns a floorplan block name to every gate created since the
// checkpoint.
func (e *Emitter) SetBlock(since int, block string) {
	for i := since; i < e.N.NumGates(); i++ {
		e.N.Gate(netlist.GateID(i)).Block = block
	}
}
