package circuits

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func TestWallaceMultiplierComputesProducts(t *testing.T) {
	const w = 6
	lib := cell.RichASIC()
	m, err := WallaceMultiplier(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, m.N)
	sim, err := netlist.NewSimulator(m.N)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<w - 1
	for a := uint64(0); a <= mask; a += 2 {
		for b := uint64(0); b <= mask; b += 3 {
			in := map[string]bool{"const0": false}
			netlist.WordToInputs(in, "a", a, w)
			netlist.WordToInputs(in, "b", b, w)
			if _, err := sim.Eval(in); err != nil {
				t.Fatal(err)
			}
			var got uint64
			for i, id := range m.Product {
				if sim.Value(id) {
					got |= 1 << uint(i)
				}
			}
			if got != a*b {
				t.Fatalf("%d * %d = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestWallaceShallowerThanArray(t *testing.T) {
	lib := cell.RichASIC()
	arr, err := ArrayMultiplier(lib, 12)
	if err != nil {
		t.Fatal(err)
	}
	wal, err := WallaceMultiplier(lib, 12)
	if err != nil {
		t.Fatal(err)
	}
	da := analyze(t, arr.N).WorstComb
	dw := analyze(t, wal.N).WorstComb
	if dw >= da {
		t.Fatalf("Wallace (%.1f FO4) should beat the array reduction (%.1f FO4)",
			dw.FO4(), da.FO4())
	}
}

func TestComparator(t *testing.T) {
	const w = 8
	lib := cell.RichASIC()
	c, err := NewComparator(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, c.N)
	sim, err := netlist.NewSimulator(c.N)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		in := map[string]bool{"const1": true}
		netlist.WordToInputs(in, "a", uint64(a), w)
		netlist.WordToInputs(in, "b", uint64(b), w)
		if _, err := sim.Eval(in); err != nil {
			return false
		}
		return sim.Value(c.EQ) == (a == b) && sim.Value(c.GT) == (a > b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityEncoder(t *testing.T) {
	const w = 8
	lib := cell.RichASIC()
	p, err := NewPriorityEncoder(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, p.N)
	sim, err := netlist.NewSimulator(p.N)
	if err != nil {
		t.Fatal(err)
	}
	for vec := 0; vec < 1<<w; vec += 7 {
		in := map[string]bool{"const1": true}
		netlist.WordToInputs(in, "r", uint64(vec), w)
		if _, err := sim.Eval(in); err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i, id := range p.Out {
			if sim.Value(id) {
				got |= 1 << uint(i)
			}
		}
		valid := sim.Value(p.Valid)
		if vec == 0 {
			if valid {
				t.Fatal("valid asserted with no requests")
			}
			continue
		}
		if !valid {
			t.Fatalf("valid not asserted for %08b", vec)
		}
		want := uint64(0)
		for i := w - 1; i >= 0; i-- {
			if vec&(1<<i) != 0 {
				want = uint64(i)
				break
			}
		}
		if got != want {
			t.Fatalf("prienc(%08b) = %d, want %d", vec, got, want)
		}
	}
	if _, err := NewPriorityEncoder(lib, 6); err == nil {
		t.Fatal("non-power-of-two width must be rejected")
	}
}

func TestLFSRSequence(t *testing.T) {
	lib := cell.RichASIC()
	// 4-bit maximal LFSR with taps {3, 2}: period 15.
	l, err := NewLFSR(lib, 4, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	checkNetlist(t, l.N)
	sim, err := netlist.NewSimulator(l.N)
	if err != nil {
		t.Fatal(err)
	}
	// Inject a seed pulse, then run free and collect the state stream.
	if _, err := sim.Step(map[string]bool{"seed": true}); err != nil {
		t.Fatal(err)
	}
	var states []int
	for c := 0; c < 40; c++ {
		if _, err := sim.Step(map[string]bool{"seed": false}); err != nil {
			t.Fatal(err)
		}
		s := 0
		for _, r := range l.N.Regs() {
			s <<= 1
			if sim.Value(r.Q) {
				s |= 1
			}
		}
		states = append(states, s)
	}
	// Nonzero forever (maximal LFSRs never re-enter zero) and periodic
	// with period 15.
	for i, s := range states {
		if s == 0 {
			t.Fatalf("LFSR died at cycle %d", i)
		}
	}
	for i := 0; i+15 < len(states); i++ {
		if states[i] != states[i+15] {
			t.Fatalf("period != 15 at offset %d", i)
		}
	}
	// Distinct states within one period: all 15.
	seen := map[int]bool{}
	for _, s := range states[:15] {
		seen[s] = true
	}
	if len(seen) != 15 {
		t.Fatalf("only %d distinct states in a period, want 15", len(seen))
	}
}

func TestLFSRValidation(t *testing.T) {
	lib := cell.RichASIC()
	if _, err := NewLFSR(lib, 1, []int{0}); err == nil {
		t.Fatal("width 1 must be rejected")
	}
	if _, err := NewLFSR(lib, 4, nil); err == nil {
		t.Fatal("no taps must be rejected")
	}
	if _, err := NewLFSR(lib, 4, []int{9}); err == nil {
		t.Fatal("out-of-range tap must be rejected")
	}
}

func TestLFSRIsUnpipelinableLoop(t *testing.T) {
	// The LFSR's critical path is reg -> feedback XOR -> reg: the
	// sequential loop the paper says cannot be cut.
	lib := cell.RichASIC()
	l, err := NewLFSR(lib, 16, []int{15, 13, 12, 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sta.Analyze(l.N, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstEndKind != sta.EndRegisterD {
		t.Fatal("critical path should end at a register")
	}
	// Tiny cycle: a couple of XORs, no way to overlap work.
	if r.CombFO4() > 10 {
		t.Fatalf("feedback path %.1f FO4, expected short", r.CombFO4())
	}
}
