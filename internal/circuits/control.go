package circuits

import (
	"fmt"
	"math/rand"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// RandomLogic builds a seeded random combinational network: nGates gates
// drawn from the library's available simple functions, wired to earlier
// signals with locality bias. It stands in for the irregular control logic
// (decoders, arbiters, state machines) that dominates typical ASICs and
// that custom techniques help least with.
func RandomLogic(lib *cell.Library, inputs, nGates int, seed int64) (*netlist.Netlist, error) {
	if inputs < 2 || nGates < 1 {
		return nil, fmt.Errorf("circuits: random logic needs >=2 inputs and >=1 gate, got %d/%d", inputs, nGates)
	}
	n := netlist.New(fmt.Sprintf("rand%d_s%d", nGates, seed))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	signals := e.Words("in", inputs)
	// Candidate functions, weighted toward the cheap gates real control
	// logic is full of.
	type choice struct {
		f cell.Func
		w int
	}
	all := []choice{
		{cell.FuncNand2, 6}, {cell.FuncNor2, 4}, {cell.FuncInv, 3},
		{cell.FuncNand3, 2}, {cell.FuncNor3, 2},
		{cell.FuncAoi21, 2}, {cell.FuncOai21, 2},
		{cell.FuncXor2, 1}, {cell.FuncMux2, 1},
		{cell.FuncAnd2, 2}, {cell.FuncOr2, 2},
	}
	var avail []choice
	total := 0
	for _, c := range all {
		if lib.Has(c.f) {
			avail = append(avail, c)
			total += c.w
		}
	}

	pick := func() cell.Func {
		r := rng.Intn(total)
		for _, c := range avail {
			r -= c.w
			if r < 0 {
				return c.f
			}
		}
		return avail[len(avail)-1].f
	}
	// pickSignal prefers recent signals, giving the network depth.
	pickSignal := func() netlist.NetID {
		k := len(signals)
		// Triangular distribution toward the most recent quarter.
		i := k - 1 - rng.Intn(1+rng.Intn((k+3)/4))
		return signals[i]
	}

	for i := 0; i < nGates; i++ {
		f := pick()
		ins := make([]netlist.NetID, f.Inputs())
		for j := range ins {
			ins[j] = pickSignal()
		}
		out := n.MustGate(lib.Smallest(f), ins...)
		signals = append(signals, out)
	}
	// The last few signals become outputs.
	outs := 1 + nGates/16
	if outs > 8 {
		outs = 8
	}
	for i := 0; i < outs; i++ {
		n.MarkOutput(signals[len(signals)-1-i])
	}
	return n, nil
}

// BusInterface builds a registered bus-interface controller: a small state
// register with next-state logic that depends on fresh primary inputs every
// cycle. This is the paper's section 4.1 example of a design whose
// cycle-by-cycle input dependence leaves no way to pipeline: the loop from
// state register through next-state logic back to the register is the
// critical path and cannot be cut.
func BusInterface(lib *cell.Library, stateBits, reqBits int) (*netlist.Netlist, error) {
	if stateBits < 2 || reqBits < 1 {
		return nil, fmt.Errorf("circuits: bus interface needs >=2 state bits and >=1 request bit")
	}
	n := netlist.New(fmt.Sprintf("busif_s%d_r%d", stateBits, reqBits))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	ff := lib.DefaultSeq(2)
	if ff == nil {
		return nil, fmt.Errorf("circuits: library %s has no sequential cells", lib.Name)
	}

	req := e.Words("req", reqBits)
	// State registers: D nets are created after the logic, so build Q
	// first using placeholder self-loop construction: create dummy input
	// nets is not allowed (regs need a D net first). Instead build
	// next-state logic from a set of "current state" nets that are the
	// Q outputs of registers whose D we patch in afterwards — the
	// netlist API requires D at AddReg time, so use a two-pass trick:
	// compute next-state logic from PIs only in pass captures, then
	// connect. Simplest construction that stays acyclic per-cycle:
	// current state enters as register outputs, so create the regs fed
	// by temporary nets, then splice. To avoid splicing machinery, we
	// instead build the canonical unrolled form: state_in -> logic ->
	// state_out register -> (next cycle). The timing loop is identical.
	stateIn := make([]netlist.NetID, stateBits)
	for i := range stateIn {
		stateIn[i] = n.AddInput(fmt.Sprintf("state_q[%d]", i))
	}

	// Next-state logic: each bit mixes grant arbitration, request
	// priority, and a parity of the state — a dense, branchy function.
	next := make([]netlist.NetID, stateBits)
	for i := range next {
		a := stateIn[i]
		b := stateIn[(i+1)%stateBits]
		c := req[i%reqBits]
		d := req[(i+3)%reqBits]
		t1 := e.Aoi21(a, c, b)
		t2 := e.Oai21(b, d, a)
		t3 := e.Xor2(t1, t2)
		grant := e.And2(t3, e.Or2(c, b))
		hold := e.Mux2(a, t3, grant)
		next[i] = e.Xor2(hold, e.Nand2(t1, d))
	}
	for i, d := range next {
		q := n.AddReg(ff, d)
		n.Net(q).Name = fmt.Sprintf("state_d%d_q", i)
		n.MarkOutput(q)
	}
	// Grant outputs are combinational off the state.
	for i := 0; i < reqBits; i++ {
		g := e.And2(stateIn[i%stateBits], req[i])
		n.MarkOutput(g)
	}
	return n, nil
}

// DatapathComb builds the combinational core of DatapathChain: `slices`
// back-to-back w-bit add/mix slices with no registers at all, suitable as
// input to internal/pipeline. Each slice is tagged as a floorplan block.
func DatapathComb(lib *cell.Library, w, slices int) (*netlist.Netlist, error) {
	if slices < 1 {
		return nil, fmt.Errorf("circuits: datapath needs >=1 slice, got %d", slices)
	}
	n := netlist.New(fmt.Sprintf("dpcomb%d_w%d", slices, w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	a := e.Words("a", w)
	b := e.Words("b", w)
	cur, other := a, b
	for s := 0; s < slices; s++ {
		mark := e.Checkpoint()
		next := addSlice(e, cur, other, s)
		for i, j := 0, len(next)-1; i < j; i, j = i+1, j-1 {
			next[i], next[j] = next[j], next[i]
		}
		e.SetBlock(mark, fmt.Sprintf("slice%d", s))
		other = cur
		cur = next
	}
	e.Outputs(cur)
	return n, nil
}

// DatapathChain builds a deep unpipelined datapath: `stages` back-to-back
// w-bit carry-lookahead add/logic slices feeding one another, bracketed by
// input and output registers. It is the raw material for the pipelining
// experiments: a long data-parallel computation with ~44 FO4 of logic at
// ASIC depths, cuttable into stages.
func DatapathChain(lib *cell.Library, w, stages int) (*netlist.Netlist, error) {
	if stages < 1 {
		return nil, fmt.Errorf("circuits: datapath chain needs >=1 stage, got %d", stages)
	}
	n := netlist.New(fmt.Sprintf("chain%d_w%d", stages, w))
	e, err := NewEmitter(n, lib)
	if err != nil {
		return nil, err
	}
	ff := lib.DefaultSeq(2)
	if ff == nil {
		return nil, fmt.Errorf("circuits: library %s has no sequential cells", lib.Name)
	}

	a := e.Words("a", w)
	b := e.Words("b", w)
	// Register the inputs (timing starts at register outputs).
	for i := range a {
		a[i] = n.AddReg(ff, a[i])
		b[i] = n.AddReg(ff, b[i])
	}

	cur := a
	other := b
	for s := 0; s < stages; s++ {
		mark := e.Checkpoint()
		next := addSlice(e, cur, other, s)
		// Reverse the bus between slices so the slowest (high carry)
		// bits seed the next slice's carry chain: this makes slice
		// delays compose additively, which is what a deep datapath
		// with full bit mixing does.
		for i, j := 0, len(next)-1; i < j; i, j = i+1, j-1 {
			next[i], next[j] = next[j], next[i]
		}
		e.SetBlock(mark, fmt.Sprintf("slice%d", s))
		other = cur
		cur = next
	}
	// Register the outputs.
	for _, d := range cur {
		q := n.AddReg(ff, d)
		n.MarkOutput(q)
	}
	return n, nil
}

// addSlice emits one add-rotate-mix slice: cur + other (CLA groups of 4),
// then a bitwise mix with a rotated copy.
func addSlice(e *Emitter, cur, other []netlist.NetID, round int) []netlist.NetID {
	w := len(cur)
	g := make([]netlist.NetID, w)
	p := make([]netlist.NetID, w)
	for i := 0; i < w; i++ {
		g[i] = e.And2(cur[i], other[i])
		p[i] = e.Xor2(cur[i], other[i])
	}
	carry := make([]netlist.NetID, w+1)
	carry[0] = e.constZero()
	for lo := 0; lo < w; lo += 4 {
		hi := lo + 4
		if hi > w {
			hi = w
		}
		for i := lo; i < hi; i++ {
			terms := []netlist.NetID{g[i]}
			for j := lo; j < i; j++ {
				ands := []netlist.NetID{g[j]}
				for k := j + 1; k <= i; k++ {
					ands = append(ands, p[k])
				}
				terms = append(terms, e.And(ands...))
			}
			ands := []netlist.NetID{carry[lo]}
			for k := lo; k <= i; k++ {
				ands = append(ands, p[k])
			}
			terms = append(terms, e.And(ands...))
			carry[i+1] = e.Or(terms...)
		}
	}
	out := make([]netlist.NetID, w)
	rot := (round*7 + 3) % w
	for i := 0; i < w; i++ {
		sum := e.Xor2(p[i], carry[i])
		out[i] = e.Xor2(sum, other[(i+rot)%w])
	}
	return out
}
