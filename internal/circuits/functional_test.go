package circuits

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// sumBits reads an adder's result as an integer (sum bits little-endian
// plus carry-out as the top bit).
func adderResult(t *testing.T, ad *Adder, sim *netlist.Simulator) uint64 {
	t.Helper()
	var v uint64
	for i, id := range ad.Sum {
		if sim.Value(id) {
			v |= 1 << uint(i)
		}
	}
	if sim.Value(ad.Cout) {
		v |= 1 << uint(len(ad.Sum))
	}
	return v
}

// checkAdder verifies an adder structure on random vectors against
// integer addition.
func checkAdder(t *testing.T, name string, mk func() (*Adder, error), w int, vectors int) {
	t.Helper()
	ad, err := mk()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	sim, err := netlist.NewSimulator(ad.N)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rng := rand.New(rand.NewSource(7))
	mask := uint64(1)<<uint(w) - 1
	for v := 0; v < vectors; v++ {
		a := rng.Uint64() & mask
		b := rng.Uint64() & mask
		cin := rng.Intn(2) == 1
		in := map[string]bool{"cin": cin}
		netlist.WordToInputs(in, "a", a, w)
		netlist.WordToInputs(in, "b", b, w)
		// Tie-offs for carry-select speculation.
		for _, id := range ad.N.Inputs() {
			switch ad.N.Net(id).Name {
			case "const0":
				in["const0"] = false
			case "const1":
				in["const1"] = true
			}
		}
		if _, err := sim.Eval(in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := a + b
		if cin {
			want++
		}
		if got := adderResult(t, ad, sim); got != want {
			t.Fatalf("%s: %d + %d + %v = %d, want %d", name, a, b, cin, got, want)
		}
	}
}

func TestAddersComputeSums(t *testing.T) {
	const w = 16
	lib := cell.RichASIC()
	checkAdder(t, "ripple", func() (*Adder, error) { return RippleCarry(lib, w) }, w, 200)
	checkAdder(t, "cla", func() (*Adder, error) { return CarryLookahead(lib, w) }, w, 200)
	checkAdder(t, "csel", func() (*Adder, error) { return CarrySelect(lib, w, 4) }, w, 200)
	checkAdder(t, "kogge-stone", func() (*Adder, error) { return KoggeStone(lib, w) }, w, 200)
}

func TestAddersComputeSumsOnPoorLibrary(t *testing.T) {
	// The decomposition fallbacks must preserve function too.
	const w = 8
	lib := cell.PoorASIC()
	checkAdder(t, "ripple-poor", func() (*Adder, error) { return RippleCarry(lib, w) }, w, 100)
	checkAdder(t, "cla-poor", func() (*Adder, error) { return CarryLookahead(lib, w) }, w, 100)
	checkAdder(t, "csel-poor", func() (*Adder, error) { return CarrySelect(lib, w, 4) }, w, 100)
	checkAdder(t, "ks-poor", func() (*Adder, error) { return KoggeStone(lib, w) }, w, 100)
}

func TestAdderEquivalenceProperty(t *testing.T) {
	// All four structures agree with each other on arbitrary inputs.
	const w = 12
	lib := cell.RichASIC()
	adders := map[string]*Adder{}
	sims := map[string]*netlist.Simulator{}
	for name, mk := range map[string]func() (*Adder, error){
		"rca":  func() (*Adder, error) { return RippleCarry(lib, w) },
		"cla":  func() (*Adder, error) { return CarryLookahead(lib, w) },
		"csel": func() (*Adder, error) { return CarrySelect(lib, w, 3) },
		"ks":   func() (*Adder, error) { return KoggeStone(lib, w) },
	} {
		ad, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		sim, err := netlist.NewSimulator(ad.N)
		if err != nil {
			t.Fatal(err)
		}
		adders[name], sims[name] = ad, sim
	}
	mask := uint64(1)<<w - 1
	f := func(a, b uint16, cin bool) bool {
		av, bv := uint64(a)&mask, uint64(b)&mask
		var ref uint64
		first := true
		for name, ad := range adders {
			in := map[string]bool{"cin": cin, "const0": false, "const1": true}
			netlist.WordToInputs(in, "a", av, w)
			netlist.WordToInputs(in, "b", bv, w)
			if _, err := sims[name].Eval(in); err != nil {
				return false
			}
			got := adderResult(t, ad, sims[name])
			if first {
				ref, first = got, false
			} else if got != ref {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplierComputesProducts(t *testing.T) {
	const w = 6
	lib := cell.RichASIC()
	m, err := ArrayMultiplier(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(m.N)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<w - 1
	for a := uint64(0); a <= mask; a += 3 {
		for b := uint64(0); b <= mask; b += 5 {
			in := map[string]bool{"const0": false}
			netlist.WordToInputs(in, "a", a, w)
			netlist.WordToInputs(in, "b", b, w)
			if _, err := sim.Eval(in); err != nil {
				t.Fatal(err)
			}
			var got uint64
			for i, id := range m.Product {
				if sim.Value(id) {
					got |= 1 << uint(i)
				}
			}
			if got != a*b {
				t.Fatalf("%d * %d = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestBarrelShifterRotates(t *testing.T) {
	const w = 16
	lib := cell.RichASIC()
	s, err := BarrelShifter(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(s.N)
	if err != nil {
		t.Fatal(err)
	}
	f := func(data uint16, amt uint8) bool {
		rot := int(amt) % w
		in := map[string]bool{}
		netlist.WordToInputs(in, "d", uint64(data), w)
		netlist.WordToInputs(in, "amt", uint64(rot), 4)
		if _, err := sim.Eval(in); err != nil {
			return false
		}
		var got uint64
		for i, id := range s.Out {
			if sim.Value(id) {
				got |= 1 << uint(i)
			}
		}
		want := uint64(data)<<uint(rot) | uint64(data)>>uint(w-rot)
		want &= 1<<w - 1
		if rot == 0 {
			want = uint64(data)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestALUOperations(t *testing.T) {
	const w = 8
	lib := cell.RichASIC()
	alu, err := NewALU(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(alu.N)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<w - 1
	rng := rand.New(rand.NewSource(3))
	for v := 0; v < 200; v++ {
		a := rng.Uint64() & mask
		b := rng.Uint64() & mask
		op := rng.Intn(4)
		in := map[string]bool{"const0": false}
		netlist.WordToInputs(in, "a", a, w)
		netlist.WordToInputs(in, "b", b, w)
		netlist.WordToInputs(in, "op", uint64(op), 2)
		if _, err := sim.Eval(in); err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i, id := range alu.Result {
			if sim.Value(id) {
				got |= 1 << uint(i)
			}
		}
		var want uint64
		switch op {
		case 0:
			want = (a + b) & mask
		case 1:
			want = a & b
		case 2:
			want = a | b
		case 3:
			want = a ^ b
		}
		if got != want {
			t.Fatalf("op %d: %d . %d = %d, want %d", op, a, b, got, want)
		}
	}
}

func TestBusInterfaceIsDeterministicSequentially(t *testing.T) {
	lib := cell.RichASIC()
	n, err := BusInterface(lib, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []bool {
		sim, err := netlist.NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		var trace []bool
		rng := rand.New(rand.NewSource(9))
		for cycle := 0; cycle < 50; cycle++ {
			in := map[string]bool{}
			for _, id := range n.Inputs() {
				in[n.Net(id).Name] = rng.Intn(2) == 1
			}
			out, err := sim.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range n.Outputs() {
				trace = append(trace, out[n.Net(id).Name])
			}
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sequential behaviour not reproducible")
		}
	}
}
