// Package procvar models process variation and accessibility, the paper's
// second-largest factor (section 8, x1.90 overall): lot-to-lot,
// wafer-to-wafer, die-to-die and intra-die variation produce a spread of
// working silicon speeds; foundries quote ASIC libraries at a guard-banded
// worst case, while custom vendors speed-bin and sell the fast tail.
//
// Speeds throughout are multipliers relative to the nominal design speed
// of the process: 1.0 is a nominal die; 1.3 is a die 30% faster.
package procvar

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Components are the variation magnitudes of one fabrication line.
// Sigmas are fractional (lognormal shape parameters).
type Components struct {
	// LotSigma, WaferSigma, DieSigma are the hierarchical variation
	// components.
	LotSigma, WaferSigma, DieSigma float64
	// IntraDieSigma is within-die variation; the critical path sees the
	// slowest of its segments, so intra-die variation only ever hurts.
	IntraDieSigma float64
	// PathGroups is the number of roughly independent critical-path
	// groups on a die (the max over them sets the die's speed).
	PathGroups int
	// MeanShift is the line's average speed relative to the technology
	// nominal: a freshly ramped line sits below 1.0; a mature tuned
	// line with a mid-generation shrink sits above.
	MeanShift float64
}

// Era presets: the paper observes 30-40% speed ranges when a process is
// young (Intel's first 0.18 um parts spanned 533-733 MHz) narrowing as it
// matures, with mid-life improvements (the 0.25 um 856 process shrink
// bought 18%).
func NewProcess() Components {
	return Components{LotSigma: 0.07, WaferSigma: 0.05, DieSigma: 0.05,
		IntraDieSigma: 0.04, PathGroups: 12, MeanShift: 0.95}
}

// MatureProcess is the same line after a year-plus of tuning.
func MatureProcess() Components {
	return Components{LotSigma: 0.04, WaferSigma: 0.03, DieSigma: 0.03,
		IntraDieSigma: 0.03, PathGroups: 12, MeanShift: 1.05}
}

// SecondTierFab is another company's plant in the "same" technology: the
// paper (section 8.1.2) puts identical ASIC designs 20-25% apart between
// foundries.
func SecondTierFab() Components {
	return Components{LotSigma: 0.08, WaferSigma: 0.06, DieSigma: 0.06,
		IntraDieSigma: 0.05, PathGroups: 12, MeanShift: 0.88}
}

// Sample draws n per-die speed multipliers. Dies are grouped into lots of
// 25 wafers of 40 dies, sharing their lot and wafer components, which is
// what makes the distribution clumpy in practice.
func (c Components) Sample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	const diesPerWafer = 40
	const wafersPerLot = 25
	speeds := make([]float64, 0, n)
	for len(speeds) < n {
		lot := math.Exp(rng.NormFloat64() * c.LotSigma)
		for w := 0; w < wafersPerLot && len(speeds) < n; w++ {
			wafer := math.Exp(rng.NormFloat64() * c.WaferSigma)
			for d := 0; d < diesPerWafer && len(speeds) < n; d++ {
				die := math.Exp(rng.NormFloat64() * c.DieSigma)
				// The die runs at the speed of its slowest
				// critical-path group.
				worst := 1.0
				for g := 0; g < c.PathGroups; g++ {
					p := math.Exp(rng.NormFloat64() * c.IntraDieSigma)
					if p < worst {
						worst = p
					}
				}
				speeds = append(speeds, c.MeanShift*lot*wafer*die*worst)
			}
		}
	}
	return speeds
}

// Quantile returns the q-quantile (0..1) of the speeds.
func Quantile(speeds []float64, q float64) float64 {
	if len(speeds) == 0 {
		return 0
	}
	s := append([]float64(nil), speeds...)
	sort.Float64s(s)
	idx := q * float64(len(s)-1)
	lo := int(idx)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// WorstCaseRating is the speed a foundry quotes for ASIC libraries: a low
// quantile of the distribution, times the voltage/temperature guard-band
// derate (libraries are characterized at worst-case V and T, silicon in a
// box mostly is not).
const vtDerate = 0.80

// ASICRating returns the guard-banded worst-case speed quote for a line.
func ASICRating(speeds []float64) float64 {
	return Quantile(speeds, 0.01) * vtDerate
}

// SpeedReport summarizes one line's distribution the way section 8 does.
type SpeedReport struct {
	Rated    float64 // guard-banded ASIC worst-case quote
	Median   float64 // typical silicon
	Fast     float64 // 99th percentile (the binned fast tail)
	Spread   float64 // (p99 - p1) / median: visible bin range
	TypGain  float64 // Median/Rated - 1: "typical runs X% above worst case"
	FastGain float64 // Fast/Median - 1: "fastest parts X% above typical"
}

// Analyze builds the report from sampled speeds.
func Analyze(speeds []float64) SpeedReport {
	r := SpeedReport{
		Rated:  ASICRating(speeds),
		Median: Quantile(speeds, 0.5),
		Fast:   Quantile(speeds, 0.99),
	}
	p1 := Quantile(speeds, 0.01)
	r.Spread = (r.Fast - p1) / r.Median
	if r.Rated > 0 {
		r.TypGain = r.Median/r.Rated - 1
	}
	if r.Median > 0 {
		r.FastGain = r.Fast/r.Median - 1
	}
	return r
}

func (r SpeedReport) String() string {
	return fmt.Sprintf("rated %.2f, median %.2f (+%.0f%%), fast %.2f (+%.0f%% over median), spread %.0f%%",
		r.Rated, r.Median, 100*r.TypGain, r.Fast, 100*r.FastGain, 100*r.Spread)
}

// Bin is one speed grade.
type Bin struct {
	MinSpeed float64
	Count    int
	Frac     float64
}

// SpeedBin sorts dies into grades at the given ascending speed floors;
// dies below the first floor are discards (returned as the first bin with
// MinSpeed 0). This is the custom vendor's down-binning machinery.
func SpeedBin(speeds []float64, floors []float64) []Bin {
	bins := make([]Bin, len(floors)+1)
	bins[0] = Bin{MinSpeed: 0}
	for i, f := range floors {
		bins[i+1] = Bin{MinSpeed: f}
	}
	for _, s := range speeds {
		k := 0
		for i := len(floors); i >= 1; i-- {
			if s >= floors[i-1] {
				k = i
				break
			}
		}
		bins[k].Count++
	}
	for i := range bins {
		bins[i].Frac = float64(bins[i].Count) / float64(len(speeds))
	}
	return bins
}

// TestedSpeedGain is the section 8.3 option for ASIC vendors willing to
// test every part instead of trusting the worst-case quote: the gain from
// selling parts at their measured speed (median) over the rating.
func TestedSpeedGain(speeds []float64) float64 {
	rated := ASICRating(speeds)
	if rated <= 0 {
		return 0
	}
	return Quantile(speeds, 0.5)/rated - 1
}

// FabToFabGap compares median silicon between two lines (section 8.1.2).
func FabToFabGap(a, b []float64) float64 {
	ma, mb := Quantile(a, 0.5), Quantile(b, 0.5)
	if mb == 0 {
		return 0
	}
	return ma/mb - 1
}

// CustomAdvantage is the section 8 headline: the best custom silicon
// (fast bin of the best, mature fab) against an ASIC quoted at guard-
// banded worst case on a second-tier fab.
func CustomAdvantage(bestFab, asicFab []float64) float64 {
	rated := ASICRating(asicFab)
	if rated <= 0 {
		return 0
	}
	return Quantile(bestFab, 0.99)/rated - 1
}
