package procvar

import (
	"fmt"
	"math"
)

// Wafer describes a production wafer for cost accounting.
type Wafer struct {
	// DiameterMM is the wafer diameter (200 mm was the 0.25 um-era
	// standard).
	DiameterMM float64
	// CostUSD is the processed-wafer cost.
	CostUSD float64
	// DefectsPerCm2 is the killer-defect density.
	DefectsPerCm2 float64
}

// Wafer200mm is a representative 0.25 um-generation wafer.
func Wafer200mm() Wafer {
	return Wafer{DiameterMM: 200, CostUSD: 3000, DefectsPerCm2: 0.5}
}

// DiesPerWafer estimates gross dies on a wafer: usable area over die
// area, discounted for edge loss by the standard circumference term.
func DiesPerWafer(w Wafer, dieAreaMM2 float64) int {
	if dieAreaMM2 <= 0 {
		return 0
	}
	// Standard gross-die estimate: pi*r^2/A - pi*d/sqrt(2A), the second
	// term being the edge loss.
	r := w.DiameterMM / 2
	gross := math.Pi*r*r/dieAreaMM2 - math.Pi*w.DiameterMM/math.Sqrt(2*dieAreaMM2)
	if gross < 0 {
		return 0
	}
	return int(gross)
}

// Yield is the Poisson defect-limited yield exp(-A*D): the reason the
// 225 mm^2 Alpha die and the 9.8 mm^2 IBM core live in different cost
// worlds, and part of why foundries guard-band ASIC ratings (section 8.2:
// they must guarantee speed at yield).
func Yield(w Wafer, dieAreaMM2 float64) float64 {
	areaCm2 := dieAreaMM2 / 100
	return math.Exp(-areaCm2 * w.DefectsPerCm2)
}

// CostPerGoodDie divides wafer cost over yielded dies.
func CostPerGoodDie(w Wafer, dieAreaMM2 float64) float64 {
	gross := DiesPerWafer(w, dieAreaMM2)
	if gross == 0 {
		return math.Inf(1)
	}
	good := float64(gross) * Yield(w, dieAreaMM2)
	if good < 1 {
		return math.Inf(1)
	}
	return w.CostUSD / good
}

// SpeedYield composes defect yield with a minimum speed requirement:
// the fraction of dies that both work and meet the floor. This is the
// foundry's problem in section 8.2 — "they cannot guarantee a
// sufficiently high yield" at the top of the speed distribution.
func SpeedYield(w Wafer, dieAreaMM2 float64, speeds []float64, floor float64) float64 {
	pass := 0
	for _, s := range speeds {
		if s >= floor {
			pass++
		}
	}
	if len(speeds) == 0 {
		return 0
	}
	return Yield(w, dieAreaMM2) * float64(pass) / float64(len(speeds))
}

// RatingForYield inverts SpeedYield: the highest speed floor the line can
// quote while keeping at least the target overall yield. This is exactly
// how the worst-case ASIC rating arises as an economic, not a physical,
// number.
func RatingForYield(w Wafer, dieAreaMM2 float64, speeds []float64, targetYield float64) float64 {
	defect := Yield(w, dieAreaMM2)
	if defect <= 0 || len(speeds) == 0 {
		return 0
	}
	needFrac := targetYield / defect
	if needFrac >= 1 {
		return Quantile(speeds, 0) // even the slowest die must count
	}
	// The floor is the (1 - needFrac) quantile: needFrac of dies exceed it.
	return Quantile(speeds, 1-needFrac)
}

func (w Wafer) String() string {
	return fmt.Sprintf("%.0fmm wafer, $%.0f, %.2f defects/cm2", w.DiameterMM, w.CostUSD, w.DefectsPerCm2)
}
