package procvar

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

const nDies = 20000

func TestSampleDeterministic(t *testing.T) {
	c := NewProcess()
	a := c.Sample(100, 7)
	b := c.Sample(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same dies")
		}
	}
	d := c.Sample(100, 8)
	same := true
	for i := range a {
		if a[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical samples")
	}
}

func TestSampleCount(t *testing.T) {
	f := func(n uint16) bool {
		want := int(n%3000) + 1
		return len(NewProcess().Sample(want, 1)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileBasics(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if got := Quantile(s, 0); got != 1 {
		t.Fatalf("q0 = %g, want 1", got)
	}
	if got := Quantile(s, 1); got != 5 {
		t.Fatalf("q1 = %g, want 5", got)
	}
	if got := Quantile(s, 0.5); got != 3 {
		t.Fatalf("median = %g, want 3", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Quantile must not mutate its input.
	u := []float64{3, 1, 2}
	Quantile(u, 0.5)
	if u[0] != 3 || u[1] != 1 || u[2] != 2 {
		t.Fatal("quantile reordered the caller's slice")
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := NewProcess().Sample(2000, 3)
	f := func(a, b uint8) bool {
		qa := float64(a) / 255
		qb := float64(b) / 255
		va, vb := Quantile(s, qa), Quantile(s, qb)
		if qa <= qb {
			return va <= vb+1e-12
		}
		return vb <= va+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypicalAboveWorstCaseBand(t *testing.T) {
	// Section 8: typical silicon runs 60-70% above the quoted ASIC
	// worst case (guard-banded slow corner).
	speeds := NewProcess().Sample(nDies, 42)
	rep := Analyze(speeds)
	if rep.TypGain < 0.45 || rep.TypGain > 0.95 {
		t.Fatalf("typical-over-rated = %.0f%%, want 45-95%% (paper: 60-70%%)", 100*rep.TypGain)
	}
}

func TestFastTailBand(t *testing.T) {
	// Section 8: the fastest parts run 20-40% above typical on a young
	// process (Intel's 533-733 MHz 0.18um spread), narrowing later.
	young := Analyze(NewProcess().Sample(nDies, 1))
	mature := Analyze(MatureProcess().Sample(nDies, 1))
	if young.FastGain < 0.10 || young.FastGain > 0.45 {
		t.Fatalf("young fast tail = %.0f%%, want 10-45%%", 100*young.FastGain)
	}
	if mature.FastGain >= young.FastGain {
		t.Fatalf("maturity must narrow the fast tail: young %.0f%%, mature %.0f%%",
			100*young.FastGain, 100*mature.FastGain)
	}
	if mature.Median <= young.Median {
		t.Fatal("a mature line must produce faster median silicon")
	}
}

func TestNewProcessSpreadBand(t *testing.T) {
	// Initial production spans roughly 30-40% in speed.
	rep := Analyze(NewProcess().Sample(nDies, 9))
	if rep.Spread < 0.25 || rep.Spread > 0.55 {
		t.Fatalf("new-process spread = %.0f%%, want 25-55%% (paper: 30-40%%)", 100*rep.Spread)
	}
}

func TestFabToFabGapBand(t *testing.T) {
	// Section 8.1.2: identical designs differ 20-25% between companies'
	// fabs in the same technology.
	best := MatureProcess().Sample(nDies, 11)
	second := SecondTierFab().Sample(nDies, 12)
	gap := FabToFabGap(best, second)
	if gap < 0.15 || gap > 0.45 {
		t.Fatalf("fab-to-fab gap = %.0f%%, want 15-45%% (paper: 20-25%%)", 100*gap)
	}
}

func TestCustomAdvantageBand(t *testing.T) {
	// Section 8: overall, the fastest custom silicon may be ~90% faster
	// than an ASIC rated at worst case on a lesser fab.
	best := MatureProcess().Sample(nDies, 21)
	asic := SecondTierFab().Sample(nDies, 22)
	adv := CustomAdvantage(best, asic)
	if adv < 0.6 || adv > 1.4 {
		t.Fatalf("custom advantage = %.0f%%, want 60-140%% (paper: ~90%%)", 100*adv)
	}
}

func TestSpeedBinPartition(t *testing.T) {
	speeds := NewProcess().Sample(nDies, 5)
	floors := []float64{0.8, 0.9, 1.0, 1.1}
	bins := SpeedBin(speeds, floors)
	if len(bins) != 5 {
		t.Fatalf("got %d bins, want 5", len(bins))
	}
	total := 0
	fracs := 0.0
	for _, b := range bins {
		total += b.Count
		fracs += b.Frac
	}
	if total != nDies {
		t.Fatalf("bins hold %d dies, want %d", total, nDies)
	}
	if math.Abs(fracs-1) > 1e-9 {
		t.Fatalf("bin fractions sum to %g", fracs)
	}
	// Every die in bin i must satisfy its floor: spot-check by
	// construction via a sorted scan.
	sort.Float64s(speeds)
	if bins[4].Count > 0 && speeds[len(speeds)-1] < floors[3] {
		t.Fatal("top bin populated but no die qualifies")
	}
}

func TestSpeedBinProperty(t *testing.T) {
	f := func(seed int64) bool {
		speeds := NewProcess().Sample(500, seed)
		floors := []float64{0.85, 1.0}
		bins := SpeedBin(speeds, floors)
		n := 0
		for _, b := range bins {
			n += b.Count
		}
		return n == len(speeds)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTestedSpeedGainMatchesTypGain(t *testing.T) {
	// Section 8.3: testing parts individually recovers 30-40%+ over the
	// worst-case rating — by construction this equals the typical gain.
	speeds := NewProcess().Sample(nDies, 33)
	g := TestedSpeedGain(speeds)
	rep := Analyze(speeds)
	if math.Abs(g-rep.TypGain) > 1e-12 {
		t.Fatalf("tested gain %.3f != typical gain %.3f", g, rep.TypGain)
	}
	if g < 0.3 {
		t.Fatalf("tested-speed gain = %.0f%%, want >= 30%%", 100*g)
	}
}

func TestReportString(t *testing.T) {
	if Analyze(NewProcess().Sample(1000, 2)).String() == "" {
		t.Fatal("empty report")
	}
}
