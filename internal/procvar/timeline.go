package procvar

import (
	"fmt"
	"math"
)

// ProcessAt interpolates a fabrication line's variation components over
// its life: month 0 is first risk production (wide variation, slow mean),
// month 36 is end of the generation (tight, tuned, plus the mid-life
// design-rule shrink the paper cites — Intel's 0.25 um "856" shrink was
// worth 18%). Interpolation is smooth and clamped.
func ProcessAt(months float64) Components {
	t := math.Max(0, math.Min(1, months/36))
	// Ease-out: most tuning happens early.
	u := 1 - (1-t)*(1-t)
	lerp := func(a, b float64) float64 { return a + (b-a)*u }
	young, old := NewProcess(), MatureProcess()
	return Components{
		LotSigma:      lerp(young.LotSigma, old.LotSigma),
		WaferSigma:    lerp(young.WaferSigma, old.WaferSigma),
		DieSigma:      lerp(young.DieSigma, old.DieSigma),
		IntraDieSigma: lerp(young.IntraDieSigma, old.IntraDieSigma),
		PathGroups:    young.PathGroups,
		MeanShift:     lerp(young.MeanShift, old.MeanShift),
	}
}

// GenerationRange reports the full range of clock speeds one identical
// design exhibits across a technology generation: the fast bin at end of
// life against the slow production parts at initial ramp. The paper
// expects a 50-60% range (section 8.1.1), extended further by
// down-binning.
func GenerationRange(dies int, seed int64) float64 {
	start := ProcessAt(0).Sample(dies, seed)
	end := ProcessAt(36).Sample(dies, seed+1)
	startSlow := Quantile(start, 0.05)
	endFast := Quantile(end, 0.99)
	if startSlow == 0 {
		return 0
	}
	return endFast/startSlow - 1
}

// DownBinAllocation is the paper's down-binning observation: when demand
// for a slow grade exceeds its natural yield, faster dies are sold under
// the slow label (the over-clockable parts hobbyists find).
type DownBinAllocation struct {
	// Grade floors, ascending (grade 0 is the discard bin).
	Bins []Bin
	// SoldAs[i] is how many dies ship under grade i's label.
	SoldAs []int
	// DownBinned counts dies sold below their qualified grade.
	DownBinned int
}

// DownBin allocates dies to demanded quantities per grade (aligned with
// the bins returned by SpeedBin, excluding the discard bin). Demand is
// served from each grade's own yield first, then by pulling faster dies
// down. Unserved demand stays unserved; leftover fast dies ship at their
// own grade.
func DownBin(bins []Bin, demand []int) (DownBinAllocation, error) {
	if len(demand) != len(bins)-1 {
		return DownBinAllocation{}, fmt.Errorf("procvar: demand for %d grades, have %d", len(demand), len(bins)-1)
	}
	alloc := DownBinAllocation{
		Bins:   bins,
		SoldAs: make([]int, len(bins)),
	}
	avail := make([]int, len(bins))
	for i, b := range bins {
		avail[i] = b.Count
	}
	// Serve demand from slowest grade to fastest; each grade pulls from
	// its own bin, then from the slowest still-available faster bin.
	for g := 1; g < len(bins); g++ {
		need := demand[g-1]
		take := min(need, avail[g])
		avail[g] -= take
		alloc.SoldAs[g] += take
		need -= take
		for f := g + 1; f < len(bins) && need > 0; f++ {
			take = min(need, avail[f])
			avail[f] -= take
			alloc.SoldAs[g] += take
			alloc.DownBinned += take
			need -= take
		}
	}
	// Remaining fast dies sell at their own grade.
	for g := 1; g < len(bins); g++ {
		alloc.SoldAs[g] += avail[g]
		avail[g] = 0
	}
	return alloc, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
