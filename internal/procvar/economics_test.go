package procvar

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiesPerWafer(t *testing.T) {
	w := Wafer200mm()
	// Alpha-class 225 mm^2 die vs IBM-class 9.8 mm^2 die.
	alpha := DiesPerWafer(w, 225)
	ibm := DiesPerWafer(w, 9.8)
	if alpha >= ibm {
		t.Fatalf("big die yields more dies? %d vs %d", alpha, ibm)
	}
	if alpha < 80 || alpha > 130 {
		t.Fatalf("225mm2 on 200mm wafer = %d dies, expected ~100", alpha)
	}
	if ibm < 2500 || ibm > 3300 {
		t.Fatalf("9.8mm2 on 200mm wafer = %d dies, expected ~3000", ibm)
	}
	if DiesPerWafer(w, 0) != 0 {
		t.Fatal("zero-area die should give 0")
	}
}

func TestYieldFallsWithArea(t *testing.T) {
	w := Wafer200mm()
	f := func(a, b uint8) bool {
		aa, ab := 1+float64(a), 1+float64(b)
		ya, yb := Yield(w, aa), Yield(w, ab)
		if aa <= ab {
			return ya >= yb
		}
		return yb >= ya
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Alpha-class vs IBM-class: the big die pays heavily.
	if y := Yield(w, 225); y > 0.45 {
		t.Fatalf("225mm2 yield = %.2f, should be well under half", y)
	}
	if y := Yield(w, 9.8); y < 0.9 {
		t.Fatalf("9.8mm2 yield = %.2f, should be >90%%", y)
	}
}

func TestCostPerGoodDie(t *testing.T) {
	w := Wafer200mm()
	alpha := CostPerGoodDie(w, 225)
	ibm := CostPerGoodDie(w, 9.8)
	if alpha < 20*ibm {
		t.Fatalf("the 225mm2 die should cost >20x the 9.8mm2 die: $%.0f vs $%.2f", alpha, ibm)
	}
	if math.IsInf(CostPerGoodDie(w, 1e9), 1) != true {
		t.Fatal("absurd die should cost infinity")
	}
}

func TestSpeedYieldAndRating(t *testing.T) {
	w := Wafer200mm()
	speeds := NewProcess().Sample(20000, 4)
	// At the ASIC rated speed, nearly all working dies pass.
	rated := ASICRating(speeds)
	sy := SpeedYield(w, 50, speeds, rated)
	if sy < 0.7*Yield(w, 50) {
		t.Fatalf("speed yield at rated floor = %.2f, want near defect yield %.2f", sy, Yield(w, 50))
	}
	// At the fast-bin speed, yield collapses.
	fast := Quantile(speeds, 0.99)
	if syFast := SpeedYield(w, 50, speeds, fast); syFast > 0.05 {
		t.Fatalf("fast-bin yield = %.2f, should be tiny", syFast)
	}
	// RatingForYield inverts: quoting for 60% overall yield gives a
	// floor between the two.
	floor := RatingForYield(w, 50, speeds, 0.6)
	if floor <= rated || floor >= fast {
		t.Fatalf("floor %.2f should sit between rated %.2f and fast %.2f", floor, rated, fast)
	}
	got := SpeedYield(w, 50, speeds, floor)
	if math.Abs(got-0.6) > 0.02 {
		t.Fatalf("yield at derived floor = %.2f, want ~0.60", got)
	}
}

func TestRatingForYieldEdges(t *testing.T) {
	w := Wafer200mm()
	speeds := NewProcess().Sample(1000, 1)
	// Demanding more yield than defects allow clamps to the slowest die.
	floor := RatingForYield(w, 50, speeds, 0.99)
	if floor != Quantile(speeds, 0) {
		t.Fatalf("impossible yield target should clamp to slowest die")
	}
	if RatingForYield(w, 50, nil, 0.5) != 0 {
		t.Fatal("no samples should return 0")
	}
}

func TestWaferString(t *testing.T) {
	if Wafer200mm().String() == "" {
		t.Fatal("empty wafer description")
	}
}
