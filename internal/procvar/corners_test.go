package procvar

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedAtNominalIsUnity(t *testing.T) {
	if got := SpeedAt(NominalCorner); math.Abs(got-1) > 1e-12 {
		t.Fatalf("nominal speed = %g, want 1", got)
	}
}

func TestCornerOrdering(t *testing.T) {
	worst := SpeedAt(WorstCorner)
	nom := SpeedAt(NominalCorner)
	best := SpeedAt(BestCorner)
	if !(worst < nom && nom < best) {
		t.Fatalf("corner ordering broken: %.3f / %.3f / %.3f", worst, nom, best)
	}
}

func TestGuardBandMatchesRatingDerate(t *testing.T) {
	// The physical V/T derate should land near the 0.80 constant the
	// worst-case rating applies — the guard band is not arbitrary.
	gb := GuardBand()
	if gb < 0.70 || gb > 0.90 {
		t.Fatalf("guard band = %.3f, want ~0.80", gb)
	}
}

func TestSpeedMonotoneInVoltage(t *testing.T) {
	f := func(a, b uint8) bool {
		va := 0.5 + float64(a%60)/100
		vb := 0.5 + float64(b%60)/100
		sa := SpeedAt(Corner{VddRatio: va, TempC: 55})
		sb := SpeedAt(Corner{VddRatio: vb, TempC: 55})
		if va <= vb {
			return sa <= sb+1e-12
		}
		return sb <= sa+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedMonotoneInTemperature(t *testing.T) {
	cool := SpeedAt(Corner{VddRatio: 1, TempC: 0})
	hot := SpeedAt(Corner{VddRatio: 1, TempC: 125})
	if cool <= hot {
		t.Fatal("hotter silicon must be slower")
	}
}

func TestSubThresholdClamps(t *testing.T) {
	if SpeedAt(Corner{VddRatio: 0.1, TempC: 25}) != 0 {
		t.Fatal("below-threshold supply should report zero speed")
	}
	if NominalCorner.String() == "" {
		t.Fatal("empty corner description")
	}
}
