package procvar

import (
	"fmt"
	"math"
)

// Corner is an operating condition: supply voltage (as a ratio of
// nominal) and junction temperature. Foundries characterize ASIC
// libraries at the worst corner (low V, high T); silicon in a real box
// mostly runs near nominal — the physical origin of the guard-band slice
// of the paper's section 8 factor.
type Corner struct {
	// VddRatio is supply voltage relative to nominal (0.9 = 10% droop).
	VddRatio float64
	// TempC is junction temperature in Celsius.
	TempC float64
}

// Standard characterization corners of the 0.25 um era.
var (
	// NominalCorner is typical bench conditions.
	NominalCorner = Corner{VddRatio: 1.00, TempC: 55}
	// WorstCorner is the slow signoff corner: 10% droop, hot junction.
	WorstCorner = Corner{VddRatio: 0.90, TempC: 125}
	// BestCorner is the fast corner used for hold signoff.
	BestCorner = Corner{VddRatio: 1.10, TempC: 0}
)

// alphaPower is the velocity-saturation exponent of the alpha-power-law
// delay model; ~1.3 fits quarter-micron devices.
const alphaPower = 1.3

// vtRatio is threshold voltage over nominal supply for the generation
// (about 0.5 V over 2.5 V).
const vtRatio = 0.2

// SpeedAt returns the relative circuit speed at a corner (1.0 at the
// nominal corner): the alpha-power-law supply dependence times a linear
// mobility-degradation temperature term.
//
//	speed ∝ (V - Vt)^alpha / V,  and  -0.2%/°C around 55 °C.
func SpeedAt(c Corner) float64 {
	nom := drive(1.0) / 1.0
	v := c.VddRatio
	if v <= vtRatio {
		return 0
	}
	sV := (drive(v) / v) / nom
	sT := 1 - 0.002*(c.TempC-NominalCorner.TempC)
	if sT < 0.1 {
		sT = 0.1
	}
	return sV * sT
}

func drive(v float64) float64 {
	return math.Pow(v-vtRatio, alphaPower)
}

// GuardBand is the worst-corner speed relative to nominal: the physical
// derate the foundry's worst-case quote applies on top of the process
// distribution. For the standard corners it lands near the 0.80 constant
// the rating model uses.
func GuardBand() float64 {
	return SpeedAt(WorstCorner) / SpeedAt(NominalCorner)
}

func (c Corner) String() string {
	return fmt.Sprintf("%.0f%% Vdd, %.0fC", 100*c.VddRatio, c.TempC)
}
