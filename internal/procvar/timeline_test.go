package procvar

import (
	"testing"
	"testing/quick"
)

func TestProcessAtEndpoints(t *testing.T) {
	start := ProcessAt(0)
	if start != NewProcess() {
		t.Fatalf("month 0 should equal the ramp preset: %+v", start)
	}
	end := ProcessAt(36)
	if end.MeanShift != MatureProcess().MeanShift {
		t.Fatalf("month 36 mean = %g, want %g", end.MeanShift, MatureProcess().MeanShift)
	}
	if late := ProcessAt(100); late.MeanShift != end.MeanShift {
		t.Fatal("timeline must clamp beyond the generation")
	}
}

func TestProcessAtMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		ma, mb := float64(a%40), float64(b%40)
		ca, cb := ProcessAt(ma), ProcessAt(mb)
		if ma <= mb {
			return ca.MeanShift <= cb.MeanShift+1e-12 && ca.LotSigma >= cb.LotSigma-1e-12
		}
		return cb.MeanShift <= ca.MeanShift+1e-12 && cb.LotSigma >= ca.LotSigma-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationRangeBand(t *testing.T) {
	// Section 8.1.1: a 50-60% range in produced clock speeds of the
	// identical design across a technology generation.
	r := GenerationRange(20000, 7)
	if r < 0.35 || r > 0.80 {
		t.Fatalf("generation range = %.0f%%, want 35-80%% (paper: 50-60%%)", 100*r)
	}
}

func TestDownBinServesDemandFromFasterBins(t *testing.T) {
	speeds := NewProcess().Sample(10000, 3)
	floors := []float64{0.8, 0.95, 1.05}
	bins := SpeedBin(speeds, floors)
	// Demand far more slow parts than yielded: the allocator must pull
	// fast dies down.
	demand := []int{bins[1].Count + 500, 100, 0}
	alloc, err := DownBin(bins, demand)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.DownBinned == 0 {
		t.Fatal("excess slow demand must trigger down-binning")
	}
	if alloc.SoldAs[1] != demand[0] && alloc.SoldAs[1] < bins[1].Count {
		t.Fatalf("slow grade shipped %d, demand %d, own yield %d",
			alloc.SoldAs[1], demand[0], bins[1].Count)
	}
	// Conservation: sold dies never exceed non-discard production.
	total := 0
	for g := 1; g < len(bins); g++ {
		total += alloc.SoldAs[g]
	}
	produced := 0
	for g := 1; g < len(bins); g++ {
		produced += bins[g].Count
	}
	if total != produced {
		t.Fatalf("sold %d of %d produced", total, produced)
	}
}

func TestDownBinValidatesDemand(t *testing.T) {
	bins := SpeedBin([]float64{1, 1, 1}, []float64{0.5})
	if _, err := DownBin(bins, []int{1, 2}); err == nil {
		t.Fatal("mismatched demand length must error")
	}
}
