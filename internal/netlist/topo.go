package netlist

import (
	"errors"
	"fmt"
)

// ErrCombinationalCycle reports a loop in the combinational graph (a loop
// through registers is fine; one without any register is a design error).
var ErrCombinationalCycle = errors.New("netlist: combinational cycle")

// Levelize returns the gates in topological order of the combinational
// graph: every gate appears after all gates driving its inputs. Registers
// break dependencies (a register's Q is a timing start point).
func (n *Netlist) Levelize() ([]GateID, error) {
	indeg := make([]int, len(n.gates))
	for _, g := range n.gates {
		for _, in := range g.In {
			if n.nets[in].Driver != None {
				indeg[g.ID]++
			}
		}
	}
	queue := make([]GateID, 0, len(n.gates))
	for _, g := range n.gates {
		if indeg[g.ID] == 0 {
			queue = append(queue, g.ID)
		}
	}
	order := make([]GateID, 0, len(n.gates))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		out := n.nets[n.gates[id].Out]
		for _, p := range out.Sinks {
			indeg[p.Gate]--
			if indeg[p.Gate] == 0 {
				queue = append(queue, p.Gate)
			}
		}
	}
	if len(order) != len(n.gates) {
		return nil, fmt.Errorf("%w in %s: %d of %d gates unreachable from start points",
			ErrCombinationalCycle, n.Name, len(n.gates)-len(order), len(n.gates))
	}
	return order, nil
}

// FanoutGates returns the ids of gates fed by the given gate's output.
func (n *Netlist) FanoutGates(id GateID) []GateID {
	out := n.nets[n.gates[id].Out]
	ids := make([]GateID, 0, len(out.Sinks))
	for _, p := range out.Sinks {
		ids = append(ids, p.Gate)
	}
	return ids
}

// FaninGates returns the ids of gates driving the given gate's inputs
// (registers and primary inputs are omitted).
func (n *Netlist) FaninGates(id GateID) []GateID {
	g := n.gates[id]
	ids := make([]GateID, 0, len(g.In))
	for _, in := range g.In {
		if drv := n.nets[in].Driver; drv != None {
			ids = append(ids, drv)
		}
	}
	return ids
}

// Clone deep-copies the netlist structure. Cells are shared (they are
// immutable library entries); nets, gates, and registers are copied, so
// sizing and pipelining transforms can work on a clone without disturbing
// the original.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{Name: n.Name}
	c.nets = make([]*Net, len(n.nets))
	for i, nt := range n.nets {
		cp := *nt
		cp.Sinks = append([]Pin(nil), nt.Sinks...)
		cp.RegSinks = append([]RegID(nil), nt.RegSinks...)
		c.nets[i] = &cp
	}
	c.gates = make([]*Gate, len(n.gates))
	for i, g := range n.gates {
		cp := *g
		cp.In = append([]NetID(nil), g.In...)
		c.gates[i] = &cp
	}
	c.regs = make([]*Reg, len(n.regs))
	for i, r := range n.regs {
		cp := *r
		c.regs[i] = &cp
	}
	c.inputs = append([]NetID(nil), n.inputs...)
	c.outputs = append([]NetID(nil), n.outputs...)
	return c
}
