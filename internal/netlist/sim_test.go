package netlist

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
)

func TestEvalFuncTruthTables(t *testing.T) {
	cases := []struct {
		f    cell.Func
		in   []bool
		want bool
	}{
		{cell.FuncInv, []bool{true}, false},
		{cell.FuncBuf, []bool{true}, true},
		{cell.FuncNand2, []bool{true, true}, false},
		{cell.FuncNand2, []bool{true, false}, true},
		{cell.FuncNor3, []bool{false, false, false}, true},
		{cell.FuncNor3, []bool{false, true, false}, false},
		{cell.FuncAnd4, []bool{true, true, true, true}, true},
		{cell.FuncOr4, []bool{false, false, false, false}, false},
		{cell.FuncXor2, []bool{true, false}, true},
		{cell.FuncXnor2, []bool{true, false}, false},
		{cell.FuncMux2, []bool{true, false, false}, true}, // sel=0 -> a
		{cell.FuncMux2, []bool{true, false, true}, false}, // sel=1 -> b
		{cell.FuncMaj3, []bool{true, true, false}, true},
		{cell.FuncMaj3, []bool{true, false, false}, false},
		{cell.FuncAoi21, []bool{true, true, false}, false},
		{cell.FuncAoi21, []bool{false, true, false}, true},
		{cell.FuncOai21, []bool{false, false, true}, true},
		{cell.FuncOai22, []bool{true, false, true, false}, false},
	}
	for _, c := range cases {
		got, err := EvalFunc(c.f, c.in)
		if err != nil {
			t.Fatalf("%v(%v): %v", c.f, c.in, err)
		}
		if got != c.want {
			t.Errorf("%v(%v) = %v, want %v", c.f, c.in, got, c.want)
		}
	}
}

func TestEvalFuncArityCheck(t *testing.T) {
	if _, err := EvalFunc(cell.FuncNand2, []bool{true}); err == nil {
		t.Fatal("wrong arity must error")
	}
}

func TestEvalFuncDeMorganProperty(t *testing.T) {
	// NAND(a,b) == NOT(AND(a,b)) and NOR == NOT(OR), across all inputs.
	f := func(a, b bool) bool {
		nand, _ := EvalFunc(cell.FuncNand2, []bool{a, b})
		and, _ := EvalFunc(cell.FuncAnd2, []bool{a, b})
		nor, _ := EvalFunc(cell.FuncNor2, []bool{a, b})
		or, _ := EvalFunc(cell.FuncOr2, []bool{a, b})
		return nand == !and && nor == !or
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatorCombinational(t *testing.T) {
	l := cell.RichASIC()
	n := New("mux")
	a := n.AddInput("a")
	b := n.AddInput("b")
	s := n.AddInput("s")
	y := n.MustGate(l.Smallest(cell.FuncMux2), a, b, s)
	n.MarkOutput(y)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for vec := 0; vec < 8; vec++ {
		in := map[string]bool{"a": vec&1 != 0, "b": vec&2 != 0, "s": vec&4 != 0}
		out, err := sim.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		want := in["a"]
		if in["s"] {
			want = in["b"]
		}
		if out[0] != want {
			t.Fatalf("vec %03b: got %v want %v", vec, out[0], want)
		}
	}
}

func TestSimulatorMissingInput(t *testing.T) {
	l := cell.RichASIC()
	n := New("t")
	a := n.AddInput("a")
	n.MarkOutput(n.MustGate(l.Smallest(cell.FuncInv), a))
	sim, _ := NewSimulator(n)
	if _, err := sim.Eval(map[string]bool{}); err == nil {
		t.Fatal("missing input must error")
	}
}

func TestSimulatorSequentialShiftRegister(t *testing.T) {
	// Three registers in series: input appears at the output 3 cycles
	// later.
	l := cell.RichASIC()
	ff := l.DefaultSeq(2)
	n := New("shift")
	d := n.AddInput("d")
	q := d
	for i := 0; i < 3; i++ {
		q = n.AddReg(ff, q)
	}
	n.MarkOutput(q)
	n.Net(q).Name = "q"
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []bool{true, false, true, true, false, false, true, false}
	var got []bool
	for cycle := 0; cycle < len(pattern)+3; cycle++ {
		in := false
		if cycle < len(pattern) {
			in = pattern[cycle]
		}
		out, err := sim.Step(map[string]bool{"d": in})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, out["q"])
	}
	for i, want := range pattern {
		if got[i+3] != want {
			t.Fatalf("cycle %d: shifted output %v, want %v", i+3, got[i+3], want)
		}
	}
	// First three cycles show reset state (false).
	for i := 0; i < 3; i++ {
		if got[i] {
			t.Fatalf("cycle %d should still hold reset state", i)
		}
	}
}

func TestSimulatorResetAndSetState(t *testing.T) {
	l := cell.RichASIC()
	ff := l.DefaultSeq(2)
	n := New("t")
	d := n.AddInput("d")
	q := n.AddReg(ff, d)
	n.MarkOutput(q)
	n.Net(q).Name = "q"
	sim, _ := NewSimulator(n)
	sim.SetState(0, true)
	out, err := sim.Step(map[string]bool{"d": false})
	if err != nil {
		t.Fatal(err)
	}
	if !out["q"] {
		t.Fatal("forced state not visible")
	}
	sim.Reset()
	out, _ = sim.Step(map[string]bool{"d": false})
	if out["q"] {
		t.Fatal("reset did not clear state")
	}
}

func TestWordHelpers(t *testing.T) {
	in := map[string]bool{}
	WordToInputs(in, "a", 0b1011, 4)
	if !in["a[0]"] || !in["a[1]"] || in["a[2]"] || !in["a[3]"] {
		t.Fatalf("WordToInputs wrong: %v", in)
	}
	out := map[string]bool{"y[0]": true, "y[1]": false, "y[2]": true}
	if got := OutputsToWord(out, "y", 3); got != 0b101 {
		t.Fatalf("OutputsToWord = %b, want 101", got)
	}
	if got := BitsToWord([]bool{true, true, false, true}); got != 0b1011 {
		t.Fatalf("BitsToWord = %b, want 1011", got)
	}
}
