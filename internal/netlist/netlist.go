// Package netlist provides the gate-level intermediate representation the
// rest of the toolkit operates on: a directed graph of library gates and
// registers connected by nets, with primary inputs and outputs.
//
// The combinational timing graph runs from primary inputs and register
// outputs (Q pins) to primary outputs and register inputs (D pins).
// Registers therefore delimit pipeline stages; internal/pipeline inserts
// them and internal/sta measures the paths between them.
package netlist

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/units"
)

// NetID identifies a net within one Netlist.
type NetID int

// GateID identifies a combinational gate within one Netlist.
type GateID int

// RegID identifies a register within one Netlist.
type RegID int

// None is the sentinel for "no gate/net/register".
const None = -1

// Pin locates one input pin of a gate.
type Pin struct {
	Gate GateID
	// Index is the input-pin index on the gate.
	Index int
}

// Net is a single electrical node: one driver, any number of sinks.
type Net struct {
	ID   NetID
	Name string

	// Driver is the gate driving this net, or None when the net is a
	// primary input or a register output.
	Driver GateID
	// DriverReg is the register whose Q pin drives this net, or None.
	DriverReg RegID

	// Sinks are the gate input pins this net feeds.
	Sinks []Pin
	// RegSinks are the registers whose D pins this net feeds.
	RegSinks []RegID

	// WireCap is the back-annotated interconnect capacitance on the
	// net, in minimum-inverter input-capacitance units. Zero before
	// placement; internal/place and wire-load models fill it in.
	WireCap units.Cap

	// PortLoad is extra capacitance on primary outputs (pad/next-block
	// loading).
	PortLoad units.Cap

	// ExtraDelay is the distributed-RC wire delay on this net beyond
	// what its lumped WireCap accounts for (the resistive-shielding and
	// repeater-chain component). internal/place fills it in from the
	// wire model; STA adds it after the driving gate's delay.
	ExtraDelay units.Tau

	// LengthMM is the estimated routed length, recorded by placement
	// back-annotation so wire-sizing passes can re-derive parasitics at
	// other widths.
	LengthMM float64

	// WidthMult is the wire width multiple the net is currently routed
	// at (1 = minimum width); set by annotation and wire sizing.
	WidthMult float64

	// IsInput and IsOutput mark primary ports.
	IsInput, IsOutput bool
}

// Gate is one combinational cell instance.
type Gate struct {
	ID   GateID
	Cell *cell.Cell
	In   []NetID
	Out  NetID

	// Block names the floorplan block this gate belongs to; empty means
	// unassigned. internal/place groups gates by block.
	Block string

	// Stage is the pipeline stage index assigned by internal/pipeline;
	// -1 when the netlist is unpipelined.
	Stage int
}

// Reg is one register (flip-flop or latch) instance.
type Reg struct {
	ID   RegID
	Cell *cell.SeqCell
	D, Q NetID
	// Block names the floorplan block, as for gates.
	Block string
	// Stage is the pipeline boundary index this register implements.
	Stage int
}

// Netlist is a flat gate-level design.
type Netlist struct {
	Name string

	gates []*Gate
	regs  []*Reg
	nets  []*Net

	inputs  []NetID
	outputs []NetID
}

// New creates an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

// NumGates returns the number of combinational gates.
func (n *Netlist) NumGates() int { return len(n.gates) }

// NumRegs returns the number of registers.
func (n *Netlist) NumRegs() int { return len(n.regs) }

// NumNets returns the number of nets.
func (n *Netlist) NumNets() int { return len(n.nets) }

// Gate returns the gate with the given id.
func (n *Netlist) Gate(id GateID) *Gate { return n.gates[id] }

// Reg returns the register with the given id.
func (n *Netlist) Reg(id RegID) *Reg { return n.regs[id] }

// Net returns the net with the given id.
func (n *Netlist) Net(id NetID) *Net { return n.nets[id] }

// Gates returns the gate slice (callers must not reorder it).
func (n *Netlist) Gates() []*Gate { return n.gates }

// Regs returns the register slice (callers must not reorder it).
func (n *Netlist) Regs() []*Reg { return n.regs }

// Nets returns the net slice (callers must not reorder it).
func (n *Netlist) Nets() []*Net { return n.nets }

// Inputs returns the primary input nets.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary output nets.
func (n *Netlist) Outputs() []NetID { return n.outputs }

// newNet allocates a fresh net.
func (n *Netlist) newNet(name string) *Net {
	nt := &Net{ID: NetID(len(n.nets)), Name: name, Driver: None, DriverReg: None}
	n.nets = append(n.nets, nt)
	return nt
}

// AddInput creates a primary input net.
func (n *Netlist) AddInput(name string) NetID {
	nt := n.newNet(name)
	nt.IsInput = true
	n.inputs = append(n.inputs, nt.ID)
	return nt.ID
}

// MarkOutput marks an existing net as a primary output.
func (n *Netlist) MarkOutput(id NetID) {
	nt := n.nets[id]
	if nt.IsOutput {
		return
	}
	nt.IsOutput = true
	n.outputs = append(n.outputs, id)
}

// AddGate instantiates c with the given input nets, creating and returning
// the output net. The number of inputs must match the cell function.
func (n *Netlist) AddGate(c *cell.Cell, in ...NetID) (NetID, error) {
	if len(in) != c.Inputs() {
		return None, fmt.Errorf("netlist: %s wants %d inputs, got %d", c.Name, c.Inputs(), len(in))
	}
	g := &Gate{ID: GateID(len(n.gates)), Cell: c, In: append([]NetID(nil), in...), Stage: None}
	out := n.newNet(fmt.Sprintf("g%d", g.ID))
	out.Driver = g.ID
	g.Out = out.ID
	n.gates = append(n.gates, g)
	for pin, id := range in {
		n.nets[id].Sinks = append(n.nets[id].Sinks, Pin{Gate: g.ID, Index: pin})
	}
	return out.ID, nil
}

// MustGate is AddGate for construction code where a pin-count mismatch is a
// programming error.
func (n *Netlist) MustGate(c *cell.Cell, in ...NetID) NetID {
	id, err := n.AddGate(c, in...)
	if err != nil {
		panic(err)
	}
	return id
}

// AllocNet pre-allocates an undriven net. The caller must later attach a
// driver (e.g. via AddRegTo); Check fails while the net is dangling.
// Netlist-rebuilding tools use this to create register Q nets before the
// logic computing the D inputs exists.
func (n *Netlist) AllocNet(name string) NetID {
	return n.newNet(name).ID
}

// AddRegTo instantiates a register fed by net d whose Q output is the
// pre-allocated net q (from AllocNet). It returns an error if q already
// has a driver.
func (n *Netlist) AddRegTo(c *cell.SeqCell, d, q NetID) (RegID, error) {
	nq := n.nets[q]
	if nq.Driver != None || nq.DriverReg != None || nq.IsInput {
		return None, fmt.Errorf("netlist: net %s (%d) already driven", nq.Name, q)
	}
	r := &Reg{ID: RegID(len(n.regs)), Cell: c, D: d, Q: q, Stage: None}
	nq.DriverReg = r.ID
	n.regs = append(n.regs, r)
	n.nets[d].RegSinks = append(n.nets[d].RegSinks, r.ID)
	return r.ID, nil
}

// AddReg instantiates a register fed by net d, creating and returning the
// Q-output net.
func (n *Netlist) AddReg(c *cell.SeqCell, d NetID) NetID {
	r := &Reg{ID: RegID(len(n.regs)), Cell: c, D: d, Stage: None}
	q := n.newNet(fmt.Sprintf("r%d", r.ID))
	q.DriverReg = r.ID
	r.Q = q.ID
	n.regs = append(n.regs, r)
	n.nets[d].RegSinks = append(n.nets[d].RegSinks, r.ID)
	return q.ID
}

// RewireRegD moves register id's D pin from its current net to `to`
// (used by hold-fix buffering to give a racing register a private,
// padded input).
func (n *Netlist) RewireRegD(id RegID, to NetID) {
	r := n.regs[id]
	old := n.nets[r.D]
	keep := old.RegSinks[:0]
	for _, rs := range old.RegSinks {
		if rs != id {
			keep = append(keep, rs)
		}
	}
	old.RegSinks = keep
	r.D = to
	n.nets[to].RegSinks = append(n.nets[to].RegSinks, id)
}

// ReplaceCell swaps the cell of a gate for another implementing the same
// function with the same pin count.
func (n *Netlist) ReplaceCell(id GateID, c *cell.Cell) error {
	g := n.gates[id]
	if c.Inputs() != g.Cell.Inputs() {
		return fmt.Errorf("netlist: cannot replace %s with %s: pin count %d != %d",
			g.Cell.Name, c.Name, g.Cell.Inputs(), c.Inputs())
	}
	g.Cell = c
	return nil
}

// Load computes the total capacitive load on a net: the input capacitance
// of every gate pin and register D pin it feeds, plus back-annotated wire
// capacitance and any primary-output load.
func (n *Netlist) Load(id NetID) units.Cap {
	nt := n.nets[id]
	load := nt.WireCap + nt.PortLoad
	for _, p := range nt.Sinks {
		load += n.gates[p.Gate].Cell.InputCap()
	}
	for _, r := range nt.RegSinks {
		load += n.regs[r].Cell.DCap
	}
	return load
}

// TotalArea sums the cell area of all gates and registers.
func (n *Netlist) TotalArea() float64 {
	a := 0.0
	for _, g := range n.gates {
		a += g.Cell.Area
	}
	for _, r := range n.regs {
		a += r.Cell.Area
	}
	return a
}

// Check validates structural invariants: every net has exactly one driver
// (gate, register, or primary input), every gate pin count matches its
// cell, and all ids are in range.
func (n *Netlist) Check() error {
	for _, nt := range n.nets {
		drivers := 0
		if nt.Driver != None {
			drivers++
		}
		if nt.DriverReg != None {
			drivers++
		}
		if nt.IsInput {
			drivers++
		}
		if drivers != 1 {
			return fmt.Errorf("netlist %s: net %s (%d) has %d drivers", n.Name, nt.Name, nt.ID, drivers)
		}
		for _, p := range nt.Sinks {
			if int(p.Gate) >= len(n.gates) || p.Gate < 0 {
				return fmt.Errorf("netlist %s: net %d sinks out-of-range gate %d", n.Name, nt.ID, p.Gate)
			}
			g := n.gates[p.Gate]
			if p.Index >= len(g.In) || g.In[p.Index] != nt.ID {
				return fmt.Errorf("netlist %s: net %d sink pin mismatch on gate %d", n.Name, nt.ID, p.Gate)
			}
		}
	}
	for _, g := range n.gates {
		if len(g.In) != g.Cell.Inputs() {
			return fmt.Errorf("netlist %s: gate %d (%s) has %d pins, cell wants %d",
				n.Name, g.ID, g.Cell.Name, len(g.In), g.Cell.Inputs())
		}
		if n.nets[g.Out].Driver != g.ID {
			return fmt.Errorf("netlist %s: gate %d output net back-reference broken", n.Name, g.ID)
		}
	}
	for _, r := range n.regs {
		if n.nets[r.Q].DriverReg != r.ID {
			return fmt.Errorf("netlist %s: reg %d Q net back-reference broken", n.Name, r.ID)
		}
	}
	return nil
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Gates, Regs, Nets int
	Inputs, Outputs   int
	Area              float64
	MaxFanout         int
	LogicDepth        int // gate count on the deepest combinational path
	CellsByFunc       map[string]int
}

// Summary computes netlist statistics. Logic depth requires an acyclic
// combinational graph; on a combinational cycle it reports depth -1.
func (n *Netlist) Summary() Stats {
	s := Stats{
		Gates: len(n.gates), Regs: len(n.regs), Nets: len(n.nets),
		Inputs: len(n.inputs), Outputs: len(n.outputs),
		Area:        n.TotalArea(),
		CellsByFunc: make(map[string]int),
	}
	for _, nt := range n.nets {
		if fo := len(nt.Sinks) + len(nt.RegSinks); fo > s.MaxFanout {
			s.MaxFanout = fo
		}
	}
	for _, g := range n.gates {
		s.CellsByFunc[g.Cell.Func.String()]++
	}
	order, err := n.Levelize()
	if err != nil {
		s.LogicDepth = -1
		return s
	}
	depth := make([]int, len(n.gates))
	for _, id := range order {
		g := n.gates[id]
		d := 0
		for _, in := range g.In {
			if drv := n.nets[in].Driver; drv != None && depth[drv] >= d {
				d = depth[drv] + 1
			}
		}
		if d == 0 {
			d = 1
		}
		depth[g.ID] = d
		if d > s.LogicDepth {
			s.LogicDepth = d
		}
	}
	return s
}

func (n *Netlist) String() string {
	return fmt.Sprintf("%s: %d gates, %d regs, %d nets, %d in, %d out",
		n.Name, len(n.gates), len(n.regs), len(n.nets), len(n.inputs), len(n.outputs))
}
