package netlist

import (
	"fmt"
	"math/rand"
)

// Force pins a net to a constant value in subsequent evaluations —
// stuck-at fault injection. Passing the same net again overwrites the
// forced value; Unforce releases it.
func (s *Simulator) Force(id NetID, v bool) {
	if s.forced == nil {
		s.forced = map[NetID]bool{}
	}
	s.forced[id] = v
}

// Unforce releases a forced net.
func (s *Simulator) Unforce(id NetID) {
	delete(s.forced, id)
}

// UnforceAll releases every injected fault.
func (s *Simulator) UnforceAll() { s.forced = nil }

// Fault is a single stuck-at fault site.
type Fault struct {
	Net     NetID
	StuckAt bool
}

func (f Fault) String() string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	return fmt.Sprintf("net %d stuck-at-%d", f.Net, v)
}

// CoverageReport summarizes a fault-simulation campaign.
type CoverageReport struct {
	Faults   int
	Detected int
	// Escapes lists undetected faults (up to 32).
	Escapes []Fault
}

// Coverage is the detected fraction.
func (c CoverageReport) Coverage() float64 {
	if c.Faults == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Faults)
}

func (c CoverageReport) String() string {
	return fmt.Sprintf("fault coverage: %d/%d (%.0f%%)", c.Detected, c.Faults, 100*c.Coverage())
}

// FaultCoverage runs a stuck-at fault-simulation campaign over a
// combinational netlist: both polarities on every gate-output net, tested
// with the given number of random input vectors. A fault is detected when
// any vector produces a primary-output difference against the fault-free
// circuit. This is the measurement behind the paper's section 8.3 option
// of testing every part: speed-binning silicon is only possible if the
// test program actually exercises it.
func FaultCoverage(n *Netlist, vectors int, seed int64) (CoverageReport, error) {
	if n.NumRegs() != 0 {
		return CoverageReport{}, fmt.Errorf("netlist: fault campaign supports combinational circuits")
	}
	golden, err := NewSimulator(n)
	if err != nil {
		return CoverageReport{}, err
	}
	faulty, err := NewSimulator(n)
	if err != nil {
		return CoverageReport{}, err
	}

	// Pre-generate the vector set once so every fault sees the same
	// stimuli (and the campaign is reproducible).
	rng := rand.New(rand.NewSource(seed))
	ins := make([]map[string]bool, vectors)
	for v := range ins {
		in := make(map[string]bool, len(n.Inputs()))
		for _, id := range n.Inputs() {
			switch n.Net(id).Name {
			case "const0":
				in["const0"] = false
			case "const1":
				in["const1"] = true
			default:
				in[n.Net(id).Name] = rng.Intn(2) == 1
			}
		}
		ins[v] = in
	}
	refs := make([][]bool, vectors)
	for v, in := range ins {
		out, err := golden.Eval(in)
		if err != nil {
			return CoverageReport{}, err
		}
		refs[v] = append([]bool(nil), out...)
	}

	rep := CoverageReport{}
	for _, g := range n.Gates() {
		for _, sa := range []bool{false, true} {
			rep.Faults++
			faulty.UnforceAll()
			faulty.Force(g.Out, sa)
			detected := false
			for v, in := range ins {
				out, err := faulty.Eval(in)
				if err != nil {
					return rep, err
				}
				for i := range out {
					if out[i] != refs[v][i] {
						detected = true
						break
					}
				}
				if detected {
					break
				}
			}
			if detected {
				rep.Detected++
			} else if len(rep.Escapes) < 32 {
				rep.Escapes = append(rep.Escapes, Fault{Net: g.Out, StuckAt: sa})
			}
		}
	}
	return rep, nil
}
