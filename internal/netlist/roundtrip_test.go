package netlist_test

// External-package round-trip test: every workload generator in
// internal/circuits must survive WriteVerilog -> ReadVerilog with its
// structure intact and its function unchanged on random vectors. The
// in-package verilog_test.go covers hand-built and random netlists; this
// file covers the real designs the evaluation service runs, which the
// internal tests cannot build without an import cycle.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

// workloads enumerates every circuit generator the package exports.
var workloads = []struct {
	name  string
	build func(lib *cell.Library) (*netlist.Netlist, error)
}{
	{"rca8", func(lib *cell.Library) (*netlist.Netlist, error) {
		a, err := circuits.RippleCarry(lib, 8)
		return nFrom(a, err)
	}},
	{"cla16", func(lib *cell.Library) (*netlist.Netlist, error) {
		a, err := circuits.CarryLookahead(lib, 16)
		return nFrom(a, err)
	}},
	{"csel16", func(lib *cell.Library) (*netlist.Netlist, error) {
		a, err := circuits.CarrySelect(lib, 16, 4)
		return nFrom(a, err)
	}},
	{"ks16", func(lib *cell.Library) (*netlist.Netlist, error) {
		a, err := circuits.KoggeStone(lib, 16)
		return nFrom(a, err)
	}},
	{"mult4", func(lib *cell.Library) (*netlist.Netlist, error) {
		m, err := circuits.ArrayMultiplier(lib, 4)
		if err != nil {
			return nil, err
		}
		return m.N, nil
	}},
	{"wallace4", func(lib *cell.Library) (*netlist.Netlist, error) {
		m, err := circuits.WallaceMultiplier(lib, 4)
		if err != nil {
			return nil, err
		}
		return m.N, nil
	}},
	{"shifter8", func(lib *cell.Library) (*netlist.Netlist, error) {
		s, err := circuits.BarrelShifter(lib, 8)
		if err != nil {
			return nil, err
		}
		return s.N, nil
	}},
	{"alu8", func(lib *cell.Library) (*netlist.Netlist, error) {
		a, err := circuits.NewALU(lib, 8)
		if err != nil {
			return nil, err
		}
		return a.N, nil
	}},
	{"cmp8", func(lib *cell.Library) (*netlist.Netlist, error) {
		c, err := circuits.NewComparator(lib, 8)
		if err != nil {
			return nil, err
		}
		return c.N, nil
	}},
	{"prienc8", func(lib *cell.Library) (*netlist.Netlist, error) {
		p, err := circuits.NewPriorityEncoder(lib, 8)
		if err != nil {
			return nil, err
		}
		return p.N, nil
	}},
	{"lfsr8", func(lib *cell.Library) (*netlist.Netlist, error) {
		l, err := circuits.NewLFSR(lib, 8, []int{7, 5, 4, 3})
		if err != nil {
			return nil, err
		}
		return l.N, nil
	}},
	{"random", func(lib *cell.Library) (*netlist.Netlist, error) {
		return circuits.RandomLogic(lib, 8, 60, 3)
	}},
	{"businterface", func(lib *cell.Library) (*netlist.Netlist, error) {
		return circuits.BusInterface(lib, 3, 4)
	}},
	{"datapath8x2", func(lib *cell.Library) (*netlist.Netlist, error) {
		return circuits.DatapathComb(lib, 8, 2)
	}},
	{"chain8x3", func(lib *cell.Library) (*netlist.Netlist, error) {
		return circuits.DatapathChain(lib, 8, 3)
	}},
}

func nFrom(a *circuits.Adder, err error) (*netlist.Netlist, error) {
	if err != nil {
		return nil, err
	}
	return a.N, nil
}

func TestVerilogRoundTripAllWorkloads(t *testing.T) {
	libs := []struct {
		name string
		lib  *cell.Library
	}{
		{"rich", cell.RichASIC()},
		{"poor", cell.PoorASIC()},
	}
	for _, lc := range libs {
		for _, wl := range workloads {
			t.Run(lc.name+"/"+wl.name, func(t *testing.T) {
				n, err := wl.build(lc.lib)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := n.WriteVerilog(&buf); err != nil {
					t.Fatal(err)
				}
				back, err := netlist.ReadVerilog(bytes.NewReader(buf.Bytes()), lc.lib)
				if err != nil {
					t.Fatal(err)
				}
				if err := back.Check(); err != nil {
					t.Fatal(err)
				}
				if back.NumGates() != n.NumGates() || back.NumRegs() != n.NumRegs() {
					t.Fatalf("structure changed: %d/%d gates, %d/%d regs",
						back.NumGates(), n.NumGates(), back.NumRegs(), n.NumRegs())
				}
				if len(back.Inputs()) != len(n.Inputs()) || len(back.Outputs()) != len(n.Outputs()) {
					t.Fatalf("interface changed: %d/%d in, %d/%d out",
						len(back.Inputs()), len(n.Inputs()), len(back.Outputs()), len(n.Outputs()))
				}
				checkEquivalent(t, n, back)
			})
		}
	}
}

// checkEquivalent drives both netlists with the same random vectors —
// combinationally for pure logic, cycle by cycle when registers are
// present — and requires identical outputs. The writer sanitizes net
// names (a[0] becomes a_0_), so inputs and outputs are paired by
// position, which both WriteVerilog and ReadVerilog preserve.
func checkEquivalent(t *testing.T, a, b *netlist.Netlist) {
	t.Helper()
	simA, err := netlist.NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := netlist.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sequential := a.NumRegs() > 0
	for v := 0; v < 32; v++ {
		inA := make(map[string]bool, len(a.Inputs()))
		inB := make(map[string]bool, len(b.Inputs()))
		for i, id := range a.Inputs() {
			bit := rng.Intn(2) == 1
			inA[a.Net(id).Name] = bit
			inB[b.Net(b.Inputs()[i]).Name] = bit
		}
		if sequential {
			oa, err := simA.Step(inA)
			if err != nil {
				t.Fatal(err)
			}
			ob, err := simB.Step(inB)
			if err != nil {
				t.Fatal(err)
			}
			for i, id := range a.Outputs() {
				nameA := a.Net(id).Name
				nameB := b.Net(b.Outputs()[i]).Name
				if oa[nameA] != ob[nameB] {
					t.Fatalf("cycle %d: output %s differs", v, nameA)
				}
			}
		} else {
			oa, err := simA.Eval(inA)
			if err != nil {
				t.Fatal(err)
			}
			ob, err := simB.Eval(inB)
			if err != nil {
				t.Fatal(err)
			}
			for i := range oa {
				if oa[i] != ob[i] {
					t.Fatalf("vector %d: output %d differs", v, i)
				}
			}
		}
	}
}
