package netlist

import (
	"fmt"

	"repro/internal/cell"
)

// EvalFunc computes a cell function over boolean inputs. It is the
// single source of functional truth used by the simulator and by
// equivalence checks in synthesis tests.
func EvalFunc(f cell.Func, in []bool) (bool, error) {
	if len(in) != f.Inputs() {
		return false, fmt.Errorf("netlist: %v wants %d inputs, got %d", f, f.Inputs(), len(in))
	}
	and := func() bool {
		for _, v := range in {
			if !v {
				return false
			}
		}
		return true
	}
	or := func() bool {
		for _, v := range in {
			if v {
				return true
			}
		}
		return false
	}
	switch f {
	case cell.FuncInv:
		return !in[0], nil
	case cell.FuncBuf:
		return in[0], nil
	case cell.FuncNand2, cell.FuncNand3, cell.FuncNand4:
		return !and(), nil
	case cell.FuncNor2, cell.FuncNor3, cell.FuncNor4:
		return !or(), nil
	case cell.FuncAnd2, cell.FuncAnd3, cell.FuncAnd4:
		return and(), nil
	case cell.FuncOr2, cell.FuncOr3, cell.FuncOr4:
		return or(), nil
	case cell.FuncXor2:
		return in[0] != in[1], nil
	case cell.FuncXnor2:
		return in[0] == in[1], nil
	case cell.FuncMux2:
		if in[2] {
			return in[1], nil
		}
		return in[0], nil
	case cell.FuncAoi21:
		return !(in[0] && in[1] || in[2]), nil
	case cell.FuncAoi22:
		return !(in[0] && in[1] || in[2] && in[3]), nil
	case cell.FuncOai21:
		return !((in[0] || in[1]) && in[2]), nil
	case cell.FuncOai22:
		return !((in[0] || in[1]) && (in[2] || in[3])), nil
	case cell.FuncMaj3:
		n := 0
		for _, v := range in {
			if v {
				n++
			}
		}
		return n >= 2, nil
	}
	return false, fmt.Errorf("netlist: no evaluation rule for %v", f)
}

// Simulator evaluates a netlist cycle by cycle: combinational logic
// settles instantly each cycle, registers capture their D values on the
// clock edge between cycles. Domino cells simulate as their logic
// function (precharge behaviour is a timing, not a logic, property).
type Simulator struct {
	n     *Netlist
	order []GateID
	// val holds the current value of every net.
	val []bool
	// state holds each register's captured value.
	state []bool
	// forced pins nets to constants (stuck-at fault injection).
	forced map[NetID]bool
}

// NewSimulator prepares a simulator; it fails on combinational cycles.
// Register state starts at zero (all false).
func NewSimulator(n *Netlist) (*Simulator, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	return &Simulator{
		n:     n,
		order: order,
		val:   make([]bool, n.NumNets()),
		state: make([]bool, n.NumRegs()),
	}, nil
}

// Reset zeroes all register state.
func (s *Simulator) Reset() {
	for i := range s.state {
		s.state[i] = false
	}
}

// SetState forces one register's state (for testing initialization).
func (s *Simulator) SetState(id RegID, v bool) { s.state[id] = v }

// settle drives inputs, propagates register state to Q nets, and
// evaluates all combinational logic.
func (s *Simulator) settle(inputs map[string]bool) error {
	apply := func(id NetID) {
		if v, ok := s.forced[id]; ok {
			s.val[id] = v
		}
	}
	for _, id := range s.n.Inputs() {
		v, ok := inputs[s.n.Net(id).Name]
		if !ok {
			return fmt.Errorf("netlist: simulator missing input %q", s.n.Net(id).Name)
		}
		s.val[id] = v
		apply(id)
	}
	for _, r := range s.n.Regs() {
		s.val[r.Q] = s.state[r.ID]
		apply(r.Q)
	}
	for _, gid := range s.order {
		g := s.n.Gate(gid)
		in := make([]bool, len(g.In))
		for i, net := range g.In {
			in[i] = s.val[net]
		}
		v, err := EvalFunc(g.Cell.Func, in)
		if err != nil {
			return err
		}
		s.val[g.Out] = v
		apply(g.Out)
	}
	return nil
}

// Step runs one clock cycle: settle combinational logic with the given
// primary-input values, sample the outputs, then clock every register.
// It returns the primary-output values observed during the cycle (before
// the edge).
func (s *Simulator) Step(inputs map[string]bool) (map[string]bool, error) {
	if err := s.settle(inputs); err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(s.n.Outputs()))
	for _, id := range s.n.Outputs() {
		out[s.n.Net(id).Name] = s.val[id]
	}
	// Clock edge: all registers capture simultaneously.
	next := make([]bool, len(s.state))
	for _, r := range s.n.Regs() {
		next[r.ID] = s.val[r.D]
	}
	copy(s.state, next)
	return out, nil
}

// Eval evaluates a purely combinational netlist once (registers, if any,
// contribute their current state but are not clocked), returning outputs
// in primary-output order.
func (s *Simulator) Eval(inputs map[string]bool) ([]bool, error) {
	if err := s.settle(inputs); err != nil {
		return nil, err
	}
	outs := make([]bool, len(s.n.Outputs()))
	for i, id := range s.n.Outputs() {
		outs[i] = s.val[id]
	}
	return outs, nil
}

// Value reports the current value of a net after the latest settle.
func (s *Simulator) Value(id NetID) bool { return s.val[id] }

// WordToInputs expands an integer into per-bit input values named
// base[0..w-1], little-endian, merging into dst.
func WordToInputs(dst map[string]bool, base string, value uint64, w int) {
	for i := 0; i < w; i++ {
		dst[fmt.Sprintf("%s[%d]", base, i)] = value&(1<<uint(i)) != 0
	}
}

// OutputsToWord packs named outputs base[0..w-1] into an integer,
// little-endian.
func OutputsToWord(out map[string]bool, base string, w int) uint64 {
	var v uint64
	for i := 0; i < w; i++ {
		if out[fmt.Sprintf("%s[%d]", base, i)] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// BitsToWord packs a bit slice (little-endian) into an integer.
func BitsToWord(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
