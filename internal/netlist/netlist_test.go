package netlist

import (
	"errors"
	"testing"

	"repro/internal/cell"
)

func lib() *cell.Library { return cell.RichASIC() }

func TestBuildAndCheck(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.MustGate(l.Smallest(cell.FuncNand2), a, b)
	y := n.MustGate(l.Smallest(cell.FuncInv), x)
	n.MarkOutput(y)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if n.NumGates() != 2 || n.NumNets() != 4 {
		t.Fatalf("got %d gates %d nets, want 2/4", n.NumGates(), n.NumNets())
	}
}

func TestAddGatePinMismatch(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	if _, err := n.AddGate(l.Smallest(cell.FuncNand2), a); err == nil {
		t.Fatal("want pin-count error")
	}
}

func TestLevelizeOrder(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.MustGate(l.Smallest(cell.FuncNand2), a, b)
	y := n.MustGate(l.Smallest(cell.FuncNand2), x, a)
	z := n.MustGate(l.Smallest(cell.FuncInv), y)
	n.MarkOutput(z)
	order, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[GateID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, g := range n.Gates() {
		for _, fi := range n.FaninGates(g.ID) {
			if pos[fi] >= pos[g.ID] {
				t.Fatalf("gate %d before its fanin %d", g.ID, fi)
			}
		}
	}
}

func TestLevelizeDetectsCycle(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	// Build a gate, then wire a second gate into a loop by hand.
	x := n.MustGate(l.Smallest(cell.FuncNand2), a, a)
	y := n.MustGate(l.Smallest(cell.FuncNand2), x, x)
	// Make x's gate depend on y: rewire pin 1 of gate 0.
	g0 := n.Gate(0)
	g0.In[1] = y
	n.Net(y).Sinks = append(n.Net(y).Sinks, Pin{Gate: 0, Index: 1})
	// Remove stale sink entry of a on pin 1.
	na := n.Net(a)
	var keep []Pin
	for _, p := range na.Sinks {
		if !(p.Gate == 0 && p.Index == 1) {
			keep = append(keep, p)
		}
	}
	na.Sinks = keep
	if _, err := n.Levelize(); !errors.Is(err, ErrCombinationalCycle) {
		t.Fatalf("want ErrCombinationalCycle, got %v", err)
	}
}

func TestRegisterBreaksCycle(t *testing.T) {
	l := lib()
	n := New("t")
	ff := l.DefaultSeq(2)
	a := n.AddInput("a")
	// q -> gate -> reg -> q is a legal sequential loop once the D net
	// exists; emulate with: reg1 fed by PI, logic from its Q back into
	// another reg.
	q := n.AddReg(ff, a)
	x := n.MustGate(l.Smallest(cell.FuncInv), q)
	q2 := n.AddReg(ff, x)
	y := n.MustGate(l.Smallest(cell.FuncNand2), q2, q)
	n.MarkOutput(y)
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Levelize(); err != nil {
		t.Fatalf("sequential loop should levelize: %v", err)
	}
}

func TestLoadAccumulates(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	inv := l.Smallest(cell.FuncInv)
	n.MustGate(inv, a)
	n.MustGate(inv, a)
	base := n.Load(a)
	if float64(base) != 2*float64(inv.InputCap()) {
		t.Fatalf("load = %v, want 2 inverter inputs", base)
	}
	n.Net(a).WireCap = 3
	if got := n.Load(a); float64(got) != float64(base)+3 {
		t.Fatalf("wire cap not added: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	x := n.MustGate(l.Smallest(cell.FuncInv), a)
	n.MarkOutput(x)
	c := n.Clone()
	// Mutate the clone: resize the gate and add wire cap.
	big := l.Largest(cell.FuncInv)
	if err := c.ReplaceCell(0, big); err != nil {
		t.Fatal(err)
	}
	c.Net(a).WireCap = 7
	if n.Gate(0).Cell == big {
		t.Fatal("clone mutation leaked into original gate")
	}
	if n.Net(a).WireCap != 0 {
		t.Fatal("clone mutation leaked into original net")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceCellRejectsPinMismatch(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	n.MustGate(l.Smallest(cell.FuncInv), a)
	if err := n.ReplaceCell(0, l.Smallest(cell.FuncNand2)); err == nil {
		t.Fatal("want pin mismatch error")
	}
}

func TestSummaryDepth(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	x := a
	for i := 0; i < 5; i++ {
		x = n.MustGate(l.Smallest(cell.FuncInv), x)
	}
	n.MarkOutput(x)
	s := n.Summary()
	if s.LogicDepth != 5 {
		t.Fatalf("depth = %d, want 5", s.LogicDepth)
	}
	if s.CellsByFunc["INV"] != 5 {
		t.Fatalf("INV count = %d, want 5", s.CellsByFunc["INV"])
	}
}

func TestCheckCatchesDoubleDriver(t *testing.T) {
	l := lib()
	n := New("t")
	a := n.AddInput("a")
	x := n.MustGate(l.Smallest(cell.FuncInv), a)
	// Corrupt: mark the gate output as also being a primary input.
	n.Net(x).IsInput = true
	if err := n.Check(); err == nil {
		t.Fatal("want double-driver error")
	}
}
