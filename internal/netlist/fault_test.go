package netlist

import (
	"testing"

	"repro/internal/cell"
)

func TestForceOverridesLogic(t *testing.T) {
	lib := cell.RichASIC()
	n := New("t")
	a := n.AddInput("a")
	x := n.MustGate(lib.Smallest(cell.FuncInv), a)
	y := n.MustGate(lib.Smallest(cell.FuncInv), x)
	n.MarkOutput(y)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Eval(map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true {
		t.Fatal("double inverter should be identity")
	}
	// Stuck-at-0 on the middle net flips the output regardless of input.
	sim.Force(x, false)
	for _, av := range []bool{false, true} {
		out, err = sim.Eval(map[string]bool{"a": av})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != true { // INV(0) = 1 always
			t.Fatal("forced net did not propagate")
		}
	}
	sim.Unforce(x)
	out, _ = sim.Eval(map[string]bool{"a": false})
	if out[0] != false {
		t.Fatal("unforce did not restore logic")
	}
}

func TestFaultCoverageAdder(t *testing.T) {
	// Random patterns detect essentially every stuck-at fault in an
	// adder (arithmetic circuits are highly observable).
	lib := cell.RichASIC()
	n := New("add4")
	// Small hand-built ripple structure via NAND/XOR gates.
	a0 := n.AddInput("a0")
	b0 := n.AddInput("b0")
	a1 := n.AddInput("a1")
	b1 := n.AddInput("b1")
	s0 := n.MustGate(lib.Smallest(cell.FuncXor2), a0, b0)
	c0 := n.MustGate(lib.Smallest(cell.FuncAnd2), a0, b0)
	s1t := n.MustGate(lib.Smallest(cell.FuncXor2), a1, b1)
	s1 := n.MustGate(lib.Smallest(cell.FuncXor2), s1t, c0)
	c1 := n.MustGate(lib.Smallest(cell.FuncMaj3), a1, b1, c0)
	n.MarkOutput(s0)
	n.MarkOutput(s1)
	n.MarkOutput(c1)

	rep, err := FaultCoverage(n, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != 2*n.NumGates() {
		t.Fatalf("fault universe %d, want %d", rep.Faults, 2*n.NumGates())
	}
	if rep.Coverage() < 0.95 {
		t.Fatalf("coverage %.0f%% too low for an adder under 40 random vectors: %v",
			100*rep.Coverage(), rep.Escapes)
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
}

func TestFaultCoverageFindsUntestableFault(t *testing.T) {
	// Redundant logic hides faults: OR(x, AND(x, y)) == x, so a stuck-0
	// on the AND output is undetectable at the output. Coverage must
	// report the escape rather than claim 100%.
	lib := cell.RichASIC()
	n := New("redundant")
	x := n.AddInput("x")
	y := n.AddInput("y")
	andOut := n.MustGate(lib.Smallest(cell.FuncAnd2), x, y)
	orOut := n.MustGate(lib.Smallest(cell.FuncOr2), x, andOut)
	n.MarkOutput(orOut)
	rep, err := FaultCoverage(n, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() >= 1.0 {
		t.Fatal("redundant fault cannot be covered")
	}
	found := false
	for _, f := range rep.Escapes {
		if f.Net == andOut && f.StuckAt == false {
			found = true
		}
	}
	if !found {
		t.Fatalf("the redundant stuck-at-0 should be the escape: %v", rep.Escapes)
	}
}

func TestFaultCoverageRejectsSequential(t *testing.T) {
	lib := cell.RichASIC()
	n := New("seq")
	a := n.AddInput("a")
	q := n.AddReg(lib.DefaultSeq(2), a)
	n.MarkOutput(q)
	if _, err := FaultCoverage(n, 10, 1); err == nil {
		t.Fatal("sequential netlist must be rejected")
	}
}

func TestFaultCampaignDeterministic(t *testing.T) {
	lib := cell.RichASIC()
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.MarkOutput(n.MustGate(lib.Smallest(cell.FuncNand2), a, b))
	r1, err := FaultCoverage(n, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := FaultCoverage(n, 8, 5)
	if r1.Detected != r2.Detected {
		t.Fatal("same seed must reproduce the campaign")
	}
}
