package netlist_test

// Fuzz target for the structural-Verilog reader. ReadVerilog ingests
// text that in production always came from WriteVerilog, but the gapd
// robustness bar is that no input — torn journal replays, truncated
// interchange files, hand-edited netlists — may panic the process. The
// corpus is seeded from the real circuits workloads (via WriteVerilog)
// plus hand-written edge cases around every statement form the dialect
// accepts.
//
// Run with: go test ./internal/netlist/ -run=^$ -fuzz=FuzzReadVerilog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

func FuzzReadVerilog(f *testing.F) {
	lib := cell.RichASIC()

	// Real emitted netlists: the dialect's happy path.
	seedBuilders := []func() (*netlist.Netlist, error){
		func() (*netlist.Netlist, error) { return circuits.DatapathComb(lib, 8, 2) },
		func() (*netlist.Netlist, error) { return circuits.BusInterface(lib, 3, 4) },
		func() (*netlist.Netlist, error) {
			a, err := circuits.RippleCarry(lib, 8)
			if err != nil {
				return nil, err
			}
			return a.N, nil
		},
	}
	for _, build := range seedBuilders {
		n, err := build()
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := n.WriteVerilog(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}

	// Edge cases around each statement form.
	for _, s := range []string{
		"",
		";",
		"module",
		"module ;",
		"module m (); endmodule",
		"module m (a); input a; output a; endmodule",
		"module m (a, y); input a; output y; wire w; INV_1 g0 (.A(a), .Y(y)); endmodule",
		"module m (y); output y; endmodule",
		"input a;",
		"wire w;",
		"module m (); DFF_1 r0 (.D(d), .Q(q)); endmodule",
		"module m (); BOGUS g0 (.A(a), .Y(y)); endmodule",
		"module m (); INV_1 g0 (); endmodule",
		"module m (); INV_1 g0 (.A(a), .Y(a)); endmodule",
		"module m (); INV_1 (.A(a)(.Y(b)); endmodule",
		"// only a comment",
		"module m (a, y); input a, a; output y, y; INV_1 g (.A(a), .Y(y)); endmodule",
		"module \x00 (); endmodule",
		"module m (y); output y; NAND2_1 g (.A(y), .B(y), .Y(y)); endmodule",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		n, err := netlist.ReadVerilog(strings.NewReader(src), lib)
		if err != nil {
			return // rejection is fine; panicking is the bug
		}
		// Anything accepted must survive the interchange loop: emit and
		// re-read without error.
		var buf bytes.Buffer
		if err := n.WriteVerilog(&buf); err != nil {
			t.Fatalf("accepted netlist failed to emit: %v\ninput: %q", err, src)
		}
		if _, err := netlist.ReadVerilog(bytes.NewReader(buf.Bytes()), lib); err != nil {
			t.Fatalf("emitted netlist failed to re-read: %v\ninput: %q\nemitted: %s",
				err, src, buf.String())
		}
	})
}
