package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cell"
)

// buildSample creates a mixed combinational/sequential netlist.
func buildSample(lib *cell.Library) *Netlist {
	n := New("sample")
	ff := lib.DefaultSeq(2)
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	x := n.MustGate(lib.Smallest(cell.FuncNand2), a, b)
	y := n.MustGate(lib.Smallest(cell.FuncXor2), x, c)
	q := n.AddReg(ff, y)
	z := n.MustGate(lib.Smallest(cell.FuncAoi21), q, a, x)
	q2 := n.AddReg(ff, z)
	w := n.MustGate(lib.Smallest(cell.FuncMux2), q2, q, b)
	n.MarkOutput(w)
	n.MarkOutput(q2)
	return n
}

func TestVerilogWriteBasics(t *testing.T) {
	lib := cell.RichASIC()
	n := buildSample(lib)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{"module sample", "input a;", "endmodule", "NAND2_X1", "DFF_X2", ".CK(clk)"} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in output:\n%s", want, v)
		}
	}
}

func TestVerilogRoundTripStructure(t *testing.T) {
	lib := cell.RichASIC()
	n := buildSample(lib)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVerilog(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != n.NumGates() || back.NumRegs() != n.NumRegs() {
		t.Fatalf("structure changed: %d/%d gates, %d/%d regs",
			back.NumGates(), n.NumGates(), back.NumRegs(), n.NumRegs())
	}
	if len(back.Inputs()) != len(n.Inputs()) || len(back.Outputs()) != len(n.Outputs()) {
		t.Fatal("interface changed")
	}
}

func TestVerilogRoundTripFunction(t *testing.T) {
	lib := cell.RichASIC()
	n := buildSample(lib)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVerilog(&buf, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential equivalence over a random stream.
	simA, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewSimulator(back)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for cyc := 0; cyc < 60; cyc++ {
		in := map[string]bool{
			"a": rng.Intn(2) == 1,
			"b": rng.Intn(2) == 1,
			"c": rng.Intn(2) == 1,
		}
		oa, err := simA.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := simB.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range oa {
			if ob[k] != v {
				t.Fatalf("cycle %d: output %s differs", cyc, k)
			}
		}
	}
}

func TestVerilogReaderRejectsGarbage(t *testing.T) {
	lib := cell.RichASIC()
	cases := []string{
		"",                                     // no module
		"module m (); assign x = y; endmodule", // unsupported construct
		"module m (y); output y; UNKNOWN_CELL u1 (.A(a), .Y(y)); endmodule",
		"module m (y); output y; endmodule", // undriven output
	}
	for _, src := range cases {
		if _, err := ReadVerilog(strings.NewReader(src), lib); err == nil {
			t.Errorf("accepted invalid source %q", src)
		}
	}
}

func TestVerilogDeterministic(t *testing.T) {
	lib := cell.RichASIC()
	n := buildSample(lib)
	var a, b bytes.Buffer
	if err := n.WriteVerilog(&a); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteVerilog(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("emission is not deterministic")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"a[3]":    "a_3_",
		"9lives":  "m9lives",
		"ok_name": "ok_name",
		"a.b-c":   "a_b_c",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVerilogRoundTripRandomCircuits(t *testing.T) {
	// Property: any mapped netlist survives the Verilog round trip with
	// identical structure and function. Random control logic exercises
	// every cell family the writer emits.
	lib := cell.RichASIC()
	for seed := int64(1); seed <= 4; seed++ {
		n := randomNetlist(t, lib, seed)
		var buf bytes.Buffer
		if err := n.WriteVerilog(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadVerilog(bytes.NewReader(buf.Bytes()), lib)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.NumGates() != n.NumGates() || len(back.Outputs()) != len(n.Outputs()) {
			t.Fatalf("seed %d: structure changed", seed)
		}
		simA, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		simB, err := NewSimulator(back)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 77))
		for v := 0; v < 40; v++ {
			in := map[string]bool{}
			for _, id := range n.Inputs() {
				in[n.Net(id).Name] = rng.Intn(2) == 1
			}
			oa, err := simA.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			ob, err := simB.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range oa {
				if oa[i] != ob[i] {
					t.Fatalf("seed %d vector %d: output %d differs", seed, v, i)
				}
			}
		}
	}
}

// randomNetlist builds a seeded random netlist without importing the
// circuits package (which would cycle): a layered mix of cell functions.
func randomNetlist(t *testing.T, lib *cell.Library, seed int64) *Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := New("rand")
	var sigs []NetID
	for i := 0; i < 8; i++ {
		sigs = append(sigs, n.AddInput(string(rune('a'+i))))
	}
	funcs := []cell.Func{
		cell.FuncInv, cell.FuncNand2, cell.FuncNor2, cell.FuncXor2,
		cell.FuncAnd3, cell.FuncOai21, cell.FuncMux2, cell.FuncMaj3,
	}
	for g := 0; g < 120; g++ {
		f := funcs[rng.Intn(len(funcs))]
		c := lib.Cells(f)[rng.Intn(len(lib.Cells(f)))]
		in := make([]NetID, c.Inputs())
		for i := range in {
			in[i] = sigs[rng.Intn(len(sigs))]
		}
		sigs = append(sigs, n.MustGate(c, in...))
	}
	for i := 0; i < 6; i++ {
		n.MarkOutput(sigs[len(sigs)-1-i])
	}
	return n
}
