package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
)

// RunOptions configures one driver run against a live gapd.
type RunOptions struct {
	// Target is the base URL of the node under test (required).
	Target string
	// Client issues the requests; nil builds one with keep-alives and a
	// connection pool sized to the plan (persistent connections, so the
	// measurement is request cost, not handshake cost).
	Client *http.Client
	// MaxShedRetries bounds how often the closed loop re-issues one
	// arrival after 429 + Retry-After before recording a terminal shed
	// failure (default 8). The open loop never retries: dropping shed
	// work is what "open loop" means.
	MaxShedRetries int
	// RequestTimeout caps one HTTP request (default 2 minutes).
	RequestTimeout time.Duration
}

// Run executes the plan against the target and returns the SLO report.
// The request schedule is fully derived (seeded) before the first
// request is sent; the wall clock only decides *when* open-loop
// arrivals fire and what latencies are observed.
func Run(ctx context.Context, plan Plan, opt RunOptions) (*Report, error) {
	if opt.Target == "" {
		return nil, fmt.Errorf("loadgen: RunOptions.Target is required")
	}
	cp, err := plan.Canon()
	if err != nil {
		return nil, err
	}
	corpus, err := BuildCorpus(cp.Corpus)
	if err != nil {
		return nil, err
	}
	sched, err := BuildSchedule(cp, corpus)
	if err != nil {
		return nil, err
	}
	if opt.MaxShedRetries == 0 {
		opt.MaxShedRetries = 8
	}
	if opt.RequestTimeout <= 0 {
		opt.RequestTimeout = 2 * time.Minute
	}
	client := opt.Client
	if client == nil {
		conns := cp.Arrival.Concurrency
		if conns < 64 {
			conns = 64
		}
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
			IdleConnTimeout:     90 * time.Second,
		}}
	}

	// Pre-encode every corpus item's request body and endpoint once.
	bodies := make([][]byte, len(corpus.Items))
	paths := make([]string, len(corpus.Items))
	for i, it := range corpus.Items {
		b, err := json.Marshal(it.Spec)
		if err != nil {
			return nil, fmt.Errorf("loadgen: corpus item %d not marshalable: %w", i, err)
		}
		bodies[i] = b
		paths[i] = endpointFor(it.Spec.Kind)
	}

	run := &runState{
		opts:     opt,
		client:   client,
		corpus:   corpus,
		sched:    sched,
		bodies:   bodies,
		paths:    paths,
		overall:  NewLatencyHist(),
		perKind:  map[string]*sliceState{},
		perPhase: map[string]*sliceState{},
		errors:   map[string]int64{},
		closed:   cp.Arrival.Process == ProcClosed,
	}

	start := now()
	var deadline time.Time
	if cp.Arrival.DurationSec > 0 && run.closed {
		deadline = start.Add(time.Duration(cp.Arrival.DurationSec * float64(time.Second)))
	}
	runCtx := ctx
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	if run.closed {
		run.runClosed(runCtx, cp.Arrival.Concurrency)
	} else {
		run.runOpen(runCtx, start)
	}
	elapsed := now().Sub(start)

	return run.report(cp, elapsed), nil
}

// endpointFor maps a job kind to its submit path.
func endpointFor(k jobs.Kind) string {
	switch k {
	case jobs.KindLadder:
		return "/v1/ladder"
	case jobs.KindSweep:
		return "/v1/sweep"
	default:
		return "/v1/evaluate"
	}
}

// sliceState accumulates one per-kind or per-phase cut during the run.
type sliceState struct {
	completed atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	hist      *LatencyHist
}

// runState is the shared mutable state of one run.
type runState struct {
	opts   RunOptions
	client *http.Client
	corpus *Corpus
	sched  *Schedule
	bodies [][]byte
	paths  []string
	closed bool

	issued    atomic.Int64
	completed atomic.Int64
	cached    atomic.Int64
	failed    atomic.Int64
	skipped   atomic.Int64
	shed      atomic.Int64

	overall *LatencyHist

	mu       sync.Mutex
	perKind  map[string]*sliceState
	perPhase map[string]*sliceState
	errors   map[string]int64
}

func (r *runState) slice(m map[string]*sliceState, key string) *sliceState {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := m[key]
	if !ok {
		s = &sliceState{hist: NewLatencyHist()}
		m[key] = s
	}
	return s
}

// runOpen fires arrivals at their scheduled offsets regardless of how
// the target keeps up — offered load is the independent variable.
func (r *runState) runOpen(ctx context.Context, start time.Time) {
	var wg sync.WaitGroup
	// An open loop still needs a finite goroutine budget; 4096 in
	// flight is far past any sane target's concurrency.
	sem := make(chan struct{}, 4096)
	for i := range r.sched.Arrivals {
		a := &r.sched.Arrivals[i]
		sleepUntil(start.Add(time.Duration(a.OffsetUS)*time.Microsecond), ctx.Done())
		if ctx.Err() != nil {
			r.skipped.Add(int64(len(r.sched.Arrivals) - i))
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r.issue(ctx, a, 0)
		}()
	}
	wg.Wait()
}

// runClosed keeps `workers` requests outstanding until the schedule (or
// the run deadline) is exhausted, honoring Retry-After on shed
// responses — throughput under backpressure is the dependent variable.
func (r *runState) runClosed(ctx context.Context, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(r.sched.Arrivals) {
					return
				}
				if ctx.Err() != nil {
					r.skipped.Add(1)
					continue // drain the remaining schedule as skipped
				}
				r.issue(ctx, &r.sched.Arrivals[i], r.opts.MaxShedRetries)
			}
		}()
	}
	wg.Wait()
}

// issue sends one arrival's request and records its terminal outcome.
// shedRetries > 0 re-issues after a 429, waiting out the server's
// Retry-After hint first (the closed loop's cooperative backoff).
func (r *runState) issue(ctx context.Context, a *Arrival, shedRetries int) {
	item := r.corpus.Items[a.Item]
	kind := string(item.Spec.Kind)
	ks := r.slice(r.perKind, kind)
	ps := r.slice(r.perPhase, a.Phase)

	for attempt := 0; ; attempt++ {
		status, cached, latency, retryAfter, err := r.sendOnce(ctx, a)
		switch {
		case err != nil:
			class := "transport"
			if ctx.Err() != nil {
				class = "canceled"
			}
			r.fail(ks, ps, class)
			return
		case status == http.StatusOK:
			r.completed.Add(1)
			if cached {
				r.cached.Add(1)
			}
			ks.completed.Add(1)
			ps.completed.Add(1)
			r.overall.Observe(int64(latency))
			ks.hist.Observe(int64(latency))
			ps.hist.Observe(int64(latency))
			return
		case status == http.StatusTooManyRequests:
			r.shed.Add(1)
			ks.shed.Add(1)
			ps.shed.Add(1)
			if attempt < shedRetries {
				sleepUntil(now().Add(retryAfter), ctx.Done())
				if ctx.Err() == nil {
					continue
				}
			}
			r.fail(ks, ps, "shed")
			return
		default:
			r.fail(ks, ps, classFor(status))
			return
		}
	}
}

func (r *runState) fail(ks, ps *sliceState, class string) {
	r.failed.Add(1)
	ks.failed.Add(1)
	ps.failed.Add(1)
	r.mu.Lock()
	r.errors[class]++
	r.mu.Unlock()
}

// classFor maps an HTTP status onto the report's error-taxonomy keys,
// mirroring serve.statusFor in reverse.
func classFor(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "spec"
	case http.StatusBadGateway, http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "http_" + strconv.Itoa(status)
	}
}

// sendOnce issues one HTTP request and reports (status, cached,
// latency, Retry-After hint, transport error). The latency is measured
// to the last body byte — the client-observed number, which is what an
// SLO is about.
func (r *runState) sendOnce(ctx context.Context, a *Arrival) (int, bool, time.Duration, time.Duration, error) {
	rctx, cancel := context.WithTimeout(ctx, r.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		r.opts.Target+r.paths[a.Item], bytes.NewReader(r.bodies[a.Item]))
	if err != nil {
		return 0, false, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	r.issued.Add(1)
	t0 := now()
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, false, 0, 0, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	resp.Body.Close()
	latency := now().Sub(t0)
	if err != nil {
		return 0, false, 0, 0, err
	}
	var retryAfter time.Duration
	if resp.StatusCode == http.StatusTooManyRequests {
		retryAfter = parseRetryAfter(resp)
	}
	cached := false
	if resp.StatusCode == http.StatusOK {
		var envelope struct {
			Cached bool `json:"cached"`
		}
		_ = json.Unmarshal(body, &envelope)
		cached = envelope.Cached
	}
	return resp.StatusCode, cached, latency, retryAfter, nil
}

// parseRetryAfter reads the Retry-After header of a shed response:
// delta-seconds or an HTTP date, clamped to [100ms, 30s]; absent or
// malformed falls back to 1s.
func parseRetryAfter(resp *http.Response) time.Duration {
	const fallback = time.Second
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return fallback
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(v); err == nil {
		d = t.Sub(now())
	} else {
		return fallback
	}
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// report assembles the final SLO report.
func (r *runState) report(p Plan, elapsed time.Duration) *Report {
	c := RequestCounts{
		Scheduled:   int64(len(r.sched.Arrivals)),
		Issued:      r.issued.Load(),
		Completed:   r.completed.Load(),
		Cached:      r.cached.Load(),
		Failed:      r.failed.Load(),
		Skipped:     r.skipped.Load(),
		Shed:        r.shed.Load(),
		DurationSec: elapsed.Seconds(),
	}
	if c.DurationSec > 0 {
		c.OfferedRPS = float64(c.Scheduled) / c.DurationSec
		c.GoodputRPS = float64(c.Completed) / c.DurationSec
	}
	if c.Issued > 0 {
		c.ShedRate = float64(c.Shed) / float64(c.Issued)
	}
	rep := &Report{
		Schema:   ReportSchema,
		Plan:     p,
		Target:   TargetInfo{URL: r.opts.Target},
		Requests: c,
		Latency:  summarize(r.overall),
		PerKind:  map[string]*Slice{},
		PerPhase: map[string]*Slice{},
		Errors:   map[string]int64{},
	}
	r.mu.Lock()
	for k, s := range r.perKind {
		rep.PerKind[k] = &Slice{
			Completed: s.completed.Load(), Failed: s.failed.Load(),
			Shed: s.shed.Load(), Latency: summarize(s.hist),
		}
	}
	for k, s := range r.perPhase {
		rep.PerPhase[k] = &Slice{
			Completed: s.completed.Load(), Failed: s.failed.Load(),
			Shed: s.shed.Load(), Latency: summarize(s.hist),
		}
	}
	for k, n := range r.errors {
		rep.Errors[k] = n
	}
	r.mu.Unlock()
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	return rep
}
