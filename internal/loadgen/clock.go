package loadgen

import "time"

// This file is the package's only wall-clock seam. The load generator
// exists to measure real latency against a real server, so it must read
// the clock — but only here, so gaplint's determinism analyzer (which
// covers this package like the core evaluation packages) proves that
// nothing else does: schedules, corpora, and item picks stay pure
// functions of the plan seed, and the clock influences only *measured*
// numbers, never *requested* work.

// now reads the wall clock for run timestamps and latency measurement.
func now() time.Time {
	//gaplint:allow determinism — the sanctioned wall-clock seam: latency measurement needs the real clock; schedules never consult it
	return time.Now()
}

// sleepUntil blocks until the given wall-clock instant or ctx-style
// cancellation via the done channel, whichever comes first. The open
// loop uses it to hold the schedule's offsets against real time.
func sleepUntil(t time.Time, done <-chan struct{}) {
	d := t.Sub(now())
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-done:
	}
}
