package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// FetchTargetInfo stamps a report with the identity of the server under
// test: build_info and uptime_seconds from GET /metrics, and the
// membership mode and node count from GET /v1/cluster when clustering
// is on. Static clusters report their full peer list; gossip clusters
// report the live view, of which only the routable members (alive,
// suspect, draining) count toward the measured cluster size — a dead
// or departed record is provenance of the past, not capacity. Errors
// on the cluster probe are not fatal (a single node 404s there by
// design).
func FetchTargetInfo(ctx context.Context, client *http.Client, base string) (TargetInfo, error) {
	if client == nil {
		client = http.DefaultClient
	}
	info := TargetInfo{URL: base, Nodes: 1}
	var metrics struct {
		Uptime float64        `json:"uptime_seconds"`
		Build  map[string]any `json:"build_info"`
		CAS    *struct {
			SegmentBytes int64 `json:"segment_bytes"`
			MaxBytes     int64 `json:"max_bytes"`
		} `json:"cas"`
	}
	if err := getInto(ctx, client, base+"/metrics", &metrics); err != nil {
		return info, fmt.Errorf("loadgen: reading %s/metrics: %w", base, err)
	}
	info.UptimeSeconds = metrics.Uptime
	info.Build = metrics.Build
	// Store provenance: a cas block carrying geometry means a disk tier
	// is attached (RAM-only pools emit cas counters but no segment
	// layout). The store mode changes what a hit costs, so it belongs
	// next to the build stamp.
	info.StoreMode = "ram"
	if metrics.CAS != nil && metrics.CAS.SegmentBytes > 0 {
		info.StoreMode = "disk"
		info.StoreSegmentBytes = metrics.CAS.SegmentBytes
		info.StoreMaxBytes = metrics.CAS.MaxBytes
	}
	var cluster struct {
		Mode    string            `json:"mode"`
		Peers   []json.RawMessage `json:"peers"`
		Members []struct {
			State string `json:"state"`
		} `json:"members"`
	}
	if err := getInto(ctx, client, base+"/v1/cluster", &cluster); err == nil {
		info.Membership = cluster.Mode
		switch {
		case len(cluster.Members) > 0:
			n := 0
			for _, m := range cluster.Members {
				switch m.State {
				case "alive", "suspect", "draining":
					n++
				}
			}
			if n > 0 {
				info.Nodes = n
			}
		case len(cluster.Peers) > 0:
			info.Nodes = len(cluster.Peers)
		}
	}
	return info, nil
}

func getInto(ctx context.Context, client *http.Client, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
