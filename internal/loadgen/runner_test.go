package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/jobs"
	"repro/internal/serve"
)

func newGapd(t *testing.T, opt serve.Options) *httptest.Server {
	t.Helper()
	if opt.Pool == nil {
		opt.Pool = jobs.NewPool(jobs.Options{Workers: 4})
	}
	srv := httptest.NewServer(serve.NewHandler(opt))
	t.Cleanup(srv.Close)
	return srv
}

// TestClosedLoopEndToEnd drives a real in-process gapd with the closed
// loop over a small cache-churning corpus and checks the report's
// accounting against the run.
func TestClosedLoopEndToEnd(t *testing.T) {
	srv := newGapd(t, serve.Options{})
	plan := Plan{
		Seed: 7,
		Arrival: ArrivalSpec{
			Process: ProcClosed, Concurrency: 4, Requests: 48, DurationSec: 30,
		},
		Corpus: CorpusSpec{Family: "faultmix", Size: 8},
	}
	rep, err := Run(context.Background(), plan, RunOptions{Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invariants: %v\n%s", err, rep.Table())
	}
	c := rep.Requests
	if c.Scheduled != 48 || c.Completed != 48 || c.Failed != 0 {
		t.Fatalf("counts: %+v, want all 48 completed", c)
	}
	// 8 distinct specs, 48 requests: at least 40 land after the first
	// computation of their spec, minus up to concurrency-1 requests that
	// join an in-flight computation (deduped but not flagged cached).
	if c.Cached < 48-8-4 {
		t.Errorf("cached %d, want >= 36 (corpus has 8 distinct specs)", c.Cached)
	}
	if rep.Latency.Count != 48 || rep.Latency.P50MS <= 0 {
		t.Errorf("latency summary %+v", rep.Latency)
	}
	if s := rep.PerKind["evaluate"]; s == nil || s.Completed != 48 {
		t.Errorf("per-kind evaluate slice: %+v", rep.PerKind)
	}
	if s := rep.PerPhase["closed"]; s == nil || s.Completed != 48 {
		t.Errorf("per-phase closed slice: %+v", rep.PerPhase)
	}
	if c.GoodputRPS <= 0 || c.DurationSec <= 0 {
		t.Errorf("rates not computed: %+v", c)
	}
}

// shedServer sheds the first n requests with 429 + Retry-After, then
// answers 200 with a minimal result envelope, recording request times.
type shedServer struct {
	mu         sync.Mutex
	sheds      int
	retryAfter string
	times      []time.Time
}

func (s *shedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.times = append(s.times, time.Now())
	shed := s.sheds > 0
	if shed {
		s.sheds--
	}
	s.mu.Unlock()
	if shed {
		w.Header().Set("Retry-After", s.retryAfter)
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded"}`))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"id":"x","kind":"evaluate","cached":false}`))
}

// TestClosedLoopHonorsRetryAfter: the closed loop must wait out the
// server's Retry-After hint before re-issuing a shed request — the
// regression test for the gapload-discovered rough edge that a 429's
// backoff hint was parsed nowhere.
func TestClosedLoopHonorsRetryAfter(t *testing.T) {
	shed := &shedServer{sheds: 1, retryAfter: "1"}
	srv := httptest.NewServer(shed)
	t.Cleanup(srv.Close)

	plan := Plan{
		Seed:    1,
		Arrival: ArrivalSpec{Process: ProcClosed, Concurrency: 1, Requests: 1},
		Corpus:  CorpusSpec{Family: "faultmix", Size: 2},
	}
	rep, err := Run(context.Background(), plan, RunOptions{Target: srv.URL, MaxShedRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invariants: %v", err)
	}
	c := rep.Requests
	if c.Shed != 1 || c.Completed != 1 || c.Failed != 0 || c.Issued != 2 {
		t.Fatalf("counts %+v, want 1 shed then 1 completed in 2 issues", c)
	}
	shed.mu.Lock()
	defer shed.mu.Unlock()
	if len(shed.times) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(shed.times))
	}
	if gap := shed.times[1].Sub(shed.times[0]); gap < 900*time.Millisecond {
		t.Errorf("retry after %v, want >= ~1s (Retry-After honored)", gap)
	}
}

// TestClosedLoopShedGiveUp: a server that never stops shedding must
// yield a terminal "shed" failure after MaxShedRetries, not a hang.
func TestClosedLoopShedGiveUp(t *testing.T) {
	shed := &shedServer{sheds: 1 << 30, retryAfter: "0"} // clamped to 100ms
	srv := httptest.NewServer(shed)
	t.Cleanup(srv.Close)

	plan := Plan{
		Seed:    1,
		Arrival: ArrivalSpec{Process: ProcClosed, Concurrency: 1, Requests: 1},
		Corpus:  CorpusSpec{Family: "faultmix", Size: 2},
	}
	rep, err := Run(context.Background(), plan, RunOptions{Target: srv.URL, MaxShedRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invariants: %v", err)
	}
	c := rep.Requests
	if c.Failed != 1 || c.Issued != 3 || c.Shed != 3 {
		t.Fatalf("counts %+v, want 3 issues (1 + 2 retries) all shed then terminal failure", c)
	}
	if rep.Errors["shed"] != 1 {
		t.Fatalf("errors %v, want shed=1", rep.Errors)
	}
}

// TestOpenLoopDropsShed: the open loop records 429 as a terminal shed
// failure without retrying — offered load is the independent variable.
func TestOpenLoopDropsShed(t *testing.T) {
	shed := &shedServer{sheds: 1 << 30, retryAfter: "1"}
	srv := httptest.NewServer(shed)
	t.Cleanup(srv.Close)

	plan := Plan{
		Seed:    7,
		Arrival: ArrivalSpec{Process: ProcPoisson, Rate: 400, DurationSec: 0.25},
		Corpus:  CorpusSpec{Family: "faultmix", Size: 2},
	}
	rep, err := Run(context.Background(), plan, RunOptions{Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invariants: %v", err)
	}
	c := rep.Requests
	if c.Scheduled == 0 {
		t.Fatal("empty schedule")
	}
	if c.Issued != c.Scheduled || c.Failed != c.Scheduled || c.Completed != 0 {
		t.Fatalf("counts %+v, want every arrival issued once and shed terminally", c)
	}
	if rep.Errors["shed"] != c.Failed {
		t.Fatalf("errors %v, want all failures classed shed", rep.Errors)
	}
}

// TestFetchTargetInfo stamps against the real serve handler: build_info
// and uptime_seconds must come back usable.
func TestFetchTargetInfo(t *testing.T) {
	srv := newGapd(t, serve.Options{})
	info, err := FetchTargetInfo(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 1 {
		t.Errorf("nodes %d, want 1 for a single node", info.Nodes)
	}
	if info.UptimeSeconds < 0 {
		t.Errorf("uptime %v", info.UptimeSeconds)
	}
	if v, ok := info.Build["go"].(string); !ok || v == "" {
		t.Errorf("build_info.go missing: %v", info.Build)
	}
	if info.StoreMode != "ram" {
		t.Errorf("store mode %q for a RAM-only pool, want ram", info.StoreMode)
	}
	if info.StoreSegmentBytes != 0 || info.StoreMaxBytes != 0 {
		t.Errorf("RAM-only target reports store geometry %d/%d", info.StoreSegmentBytes, info.StoreMaxBytes)
	}
}

// TestFetchTargetInfoStoreProvenance: a disk-tier target stamps its
// store mode and geometry into the report — a throughput number means
// something different when every hit crosses CRC+digest verification.
func TestFetchTargetInfoStoreProvenance(t *testing.T) {
	st, err := cas.Open(cas.Options{Dir: t.TempDir(), SegmentBytes: 8 << 20, MaxBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	pool := jobs.NewPool(jobs.Options{Workers: 2, Store: st})
	srv := newGapd(t, serve.Options{Pool: pool})

	info, err := FetchTargetInfo(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if info.StoreMode != "disk" {
		t.Errorf("store mode %q, want disk", info.StoreMode)
	}
	if info.StoreSegmentBytes != 8<<20 {
		t.Errorf("segment bytes %d, want %d", info.StoreSegmentBytes, int64(8<<20))
	}
	if info.StoreMaxBytes != 128<<20 {
		t.Errorf("max bytes %d, want %d", info.StoreMaxBytes, int64(128<<20))
	}
}
