package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketRoundTrip: every value must land in a bucket whose bounds
// contain it, and bucket bounds must tile the axis without gaps.
func TestBucketRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	values := []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 1e6, 1e9, 1e12}
	for i := 0; i < 10000; i++ {
		values = append(values, r.Int63n(1<<50))
	}
	for _, v := range values {
		i := bucketIndex(v)
		lo := bucketLow(i)
		hi := bucketLow(i + 1)
		if v < lo || v >= hi {
			t.Fatalf("value %d mapped to bucket %d spanning [%d,%d)", v, i, lo, hi)
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketLow(i) <= bucketLow(i-1) {
			t.Fatalf("bucket bounds not strictly increasing at %d", i)
		}
	}
}

// quantileErrBound is the histogram's documented relative error: each
// log-linear bucket spans at most 1/32 of its lower bound, so a
// quantile read (bucket midpoint) is within 1/32 of the true sample.
const quantileErrBound = 1.0 / 32

// TestQuantileBounds checks p50/p95/p99/p999 against exact quantiles of
// known shapes — uniform, exponential, and bimodal — within the
// documented error bound. Sampling is seeded, so the assertion is
// exact-reproducible, not flaky.
func TestQuantileBounds(t *testing.T) {
	const n = 50000
	dists := map[string]func(r *rand.Rand) int64{
		// Uniform over [1ms, 1s] in nanoseconds.
		"uniform": func(r *rand.Rand) int64 { return 1_000_000 + r.Int63n(999_000_000) },
		// Exponential with mean 50ms.
		"exponential": func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50e6) },
		// Bimodal: 80% fast mode near 2ms, 20% slow mode near 150ms.
		"bimodal": func(r *rand.Rand) int64 {
			if r.Float64() < 0.8 {
				return 2_000_000 + int64(r.ExpFloat64()*500_000)
			}
			return 150_000_000 + int64(r.ExpFloat64()*10_000_000)
		},
	}
	for name, draw := range dists {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				h := NewLatencyHist()
				samples := make([]int64, n)
				for i := range samples {
					v := draw(r)
					samples[i] = v
					h.Observe(v)
				}
				sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
				for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
					got := h.Quantile(q)
					// The histogram's rank convention and the exact rank
					// can differ by a sample; accept the bound against
					// the nearest-rank neighborhood.
					rank := int(q*float64(n) + 0.5)
					lo, hi := exactRange(samples, rank)
					min := float64(lo) * (1 - quantileErrBound)
					max := float64(hi) * (1 + quantileErrBound)
					if float64(got) < min || float64(got) > max {
						t.Errorf("q=%.3f: got %d, exact [%d,%d], bound [%.0f,%.0f]",
							q, got, lo, hi, min, max)
					}
				}
				if h.Count() != n {
					t.Errorf("count %d, want %d", h.Count(), n)
				}
				if h.Max() != samples[n-1] {
					t.Errorf("max %d, want %d (max is exact)", h.Max(), samples[n-1])
				}
				mean := 0.0
				for _, v := range samples {
					mean += float64(v)
				}
				mean /= n
				if math.Abs(h.Mean()-mean) > 1e-6*mean+1 {
					t.Errorf("mean %g, want %g (mean is exact)", h.Mean(), mean)
				}
			})
		}
	}
}

// exactRange returns the sample values at ranks rank-1..rank+1 (1-based,
// clamped), the neighborhood a bucketed quantile may legitimately land
// in.
func exactRange(sorted []int64, rank int) (int64, int64) {
	idx := func(r int) int64 {
		if r < 1 {
			r = 1
		}
		if r > len(sorted) {
			r = len(sorted)
		}
		return sorted[r-1]
	}
	return idx(rank - 1), idx(rank + 1)
}

// TestQuantileEmptyAndSingle covers the degenerate histograms reports
// can produce (no completed requests; one completed request).
func TestQuantileEmptyAndSingle(t *testing.T) {
	h := NewLatencyHist()
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must read as zeros")
	}
	h.Observe(5_000_000)
	got := h.Quantile(0.5)
	if math.Abs(float64(got)-5e6) > 5e6*quantileErrBound {
		t.Errorf("single-sample p50 %d not within bound of 5e6", got)
	}
}
