package loadgen

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/serve"
)

// TestLoadSmoke is the `make load-smoke` tier-1 gate: a seeded
// closed-loop run over the mixed corpus against an in-process gapd,
// capped at 5 s, asserting the report invariants end to end — every
// BENCH_loadgen_*.json committed to this repo is produced by the same
// code path this test locks down.
func TestLoadSmoke(t *testing.T) {
	pool := jobs.NewPool(jobs.Options{Workers: 8})
	srv := newGapd(t, serve.Options{Pool: pool})

	requests := 300
	if testing.Short() {
		requests = 60
	}
	plan := Plan{
		Seed: 42,
		Arrival: ArrivalSpec{
			Process: ProcClosed, Concurrency: 8,
			Requests: requests, DurationSec: 5,
		},
		Corpus: CorpusSpec{Family: "mixed", Size: 24},
	}
	rep, err := Run(context.Background(), plan, RunOptions{Target: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invariants: %v\n%s", err, rep.Table())
	}
	c := rep.Requests
	if c.Completed == 0 {
		t.Fatalf("no requests completed:\n%s", rep.Table())
	}
	if c.Cached == 0 {
		t.Error("no cache hits across a 24-spec corpus — dedup broken?")
	}
	if len(rep.PerKind) == 0 || rep.PerKind["evaluate"] == nil {
		t.Errorf("mixed corpus produced no evaluate slice: %v", rep.PerKind)
	}

	// The report must survive its own canonical JSON round trip with
	// invariants intact (what a committed BENCH file promises).
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped report invariants: %v", err)
	}

	table := rep.Table()
	for _, want := range []string{"goodput", "p50", "kind", "phase"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
