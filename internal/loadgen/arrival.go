package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival is one scheduled request: when it is issued (open loop), which
// phase of the arrival process produced it, and which corpus item it
// carries. The whole schedule is computed before the run starts, so
// runtime jitter can never feed back into what gets requested.
type Arrival struct {
	// Seq is the arrival's position in the schedule.
	Seq int `json:"seq"`
	// OffsetUS is the issue time in microseconds from run start
	// (0 for the closed loop, which issues as fast as the target and
	// concurrency allow).
	OffsetUS int64 `json:"offset_us"`
	// Phase labels the arrival-process phase for the report's per-phase
	// slices: "steady" (poisson), "calm"/"burst" (burst), "ramp_lo"/
	// "ramp_mid"/"ramp_hi" (ramp thirds), "closed".
	Phase string `json:"phase"`
	// Item indexes the corpus item this arrival requests.
	Item int `json:"item"`
}

// Schedule is the full deterministic request plan: the canonical plan
// that produced it plus every arrival in issue order.
type Schedule struct {
	Plan     Plan      `json:"plan"`
	Arrivals []Arrival `json:"arrivals"`
}

// maxScheduleArrivals bounds runaway plans (rate x duration) before
// they allocate the world.
const maxScheduleArrivals = 2_000_000

// BuildSchedule derives the arrival schedule from the canonical plan
// and the corpus. It is a pure function of (plan, corpus): arrival gaps
// come from one seeded stream, item picks from a second independent
// stream, so changing the arrival process does not reshuffle which
// specs are requested.
func BuildSchedule(p Plan, c *Corpus) (*Schedule, error) {
	cp, err := p.Canon()
	if err != nil {
		return nil, err
	}
	if len(c.Items) == 0 {
		return nil, fmt.Errorf("loadgen: empty corpus")
	}
	gaps := rand.New(rand.NewSource(cp.Seed))
	// XORing a fixed constant gives the pick stream its own seed, so
	// swapping the arrival process never reshuffles item picks.
	picks := rand.New(rand.NewSource(cp.Seed ^ 0x5bf03635))

	var arrivals []Arrival
	add := func(offsetUS int64, phase string) error {
		if len(arrivals) >= maxScheduleArrivals {
			return fmt.Errorf("loadgen: schedule exceeds %d arrivals; lower rate or duration", maxScheduleArrivals)
		}
		arrivals = append(arrivals, Arrival{
			Seq:      len(arrivals),
			OffsetUS: offsetUS,
			Phase:    phase,
			Item:     c.pick(picks),
		})
		return nil
	}

	a := cp.Arrival
	durUS := int64(a.DurationSec * 1e6)
	switch a.Process {
	case ProcClosed:
		for i := 0; i < a.Requests; i++ {
			if err := add(0, "closed"); err != nil {
				return nil, err
			}
		}
	case ProcPoisson:
		for t := expGapUS(gaps, a.Rate); t < durUS; t += expGapUS(gaps, a.Rate) {
			if err := add(t, "steady"); err != nil {
				return nil, err
			}
		}
	case ProcBurst:
		// Markov-modulated Poisson: alternate exponentially-long calm
		// and burst phases, each an independent Poisson stream at its
		// phase rate.
		t, on := int64(0), false
		for t < durUS {
			phaseLen := expGapUS(gaps, 1/a.OffMeanSec)
			rate, label := a.Rate, "calm"
			if on {
				phaseLen = expGapUS(gaps, 1/a.OnMeanSec)
				rate, label = a.BurstRate, "burst"
			}
			end := t + phaseLen
			if end > durUS {
				end = durUS
			}
			for at := t + expGapUS(gaps, rate); at < end; at += expGapUS(gaps, rate) {
				if err := add(at, label); err != nil {
					return nil, err
				}
			}
			t = end
			on = !on
		}
	case ProcRamp:
		// Inhomogeneous Poisson by thinning: candidates at the peak
		// rate, accepted with probability rate(t)/peak where rate(t)
		// rises linearly from Rate to PeakRate across the run.
		peak := math.Max(a.PeakRate, a.Rate)
		for t := expGapUS(gaps, peak); t < durUS; t += expGapUS(gaps, peak) {
			frac := float64(t) / float64(durUS)
			rate := a.Rate + (a.PeakRate-a.Rate)*frac
			if gaps.Float64()*peak >= rate {
				continue // thinned out
			}
			label := "ramp_lo"
			switch {
			case frac >= 2.0/3:
				label = "ramp_hi"
			case frac >= 1.0/3:
				label = "ramp_mid"
			}
			if err := add(t, label); err != nil {
				return nil, err
			}
		}
	}
	return &Schedule{Plan: cp, Arrivals: arrivals}, nil
}

// expGapUS draws one exponential inter-arrival gap in microseconds for
// the given rate (events/second), floored at 1 µs so a schedule always
// advances.
func expGapUS(r *rand.Rand, ratePerSec float64) int64 {
	if ratePerSec <= 0 {
		return math.MaxInt64 / 4 // no events in this phase
	}
	us := r.ExpFloat64() / ratePerSec * 1e6
	if us < 1 {
		us = 1
	}
	if us > 1e15 {
		us = 1e15
	}
	return int64(us)
}

// Canonical renders the schedule as deterministic JSON bytes — same
// plan seed, byte-identical output.
func (s *Schedule) Canonical() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: schedule not marshalable: %w", err)
	}
	return append(b, '\n'), nil
}

// Duration returns the wall-clock span the open-loop schedule covers
// (zero for the closed loop).
func (s *Schedule) Duration() time.Duration {
	if len(s.Arrivals) == 0 {
		return 0
	}
	return time.Duration(s.Arrivals[len(s.Arrivals)-1].OffsetUS) * time.Microsecond
}
