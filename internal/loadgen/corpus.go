package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/jobs"
)

// CorpusSpec parameterizes the scenario corpus: which design family to
// draw from and how many distinct specs to keep.
type CorpusSpec struct {
	// Family is one of the names in corpusFamilies, or "mixed" for the
	// weighted union of all of them.
	Family string `json:"family"`
	// Size caps the number of distinct specs (default 48). When a
	// family enumerates more than Size specs, a seeded shuffle decides
	// which survive — reproducibly.
	Size int `json:"size,omitempty"`
	// Seed drives corpus membership and per-spec evaluation seeds;
	// 0 inherits the plan seed.
	Seed int64 `json:"seed,omitempty"`
}

// Item is one corpus entry: a canonical job spec, the family that
// generated it, and its pick weight within the corpus.
type Item struct {
	Family string    `json:"family"`
	Weight float64   `json:"weight"`
	Spec   jobs.Spec `json:"spec"`
}

// Corpus is a reproducible weighted mix of canonical job specs.
type Corpus struct {
	Spec  CorpusSpec `json:"spec"`
	Items []Item     `json:"items"`

	// cum is the cumulative weight table pick consults (unexported, so
	// it never reaches the canonical encoding).
	cum []float64
}

// canon validates the corpus spec and fills defaults; planSeed supplies
// the seed when the corpus does not pin its own.
func (cs CorpusSpec) canon(planSeed int64) (CorpusSpec, error) {
	c := cs
	c.Family = strings.ToLower(strings.TrimSpace(cs.Family))
	if c.Family == "" {
		c.Family = "mixed"
	}
	if c.Family != "mixed" {
		if _, ok := corpusFamilies[c.Family]; !ok {
			return c, fmt.Errorf("loadgen: unknown corpus family %q", cs.Family)
		}
	}
	if c.Size < 0 {
		return c, fmt.Errorf("loadgen: negative corpus size")
	}
	if c.Size == 0 {
		c.Size = 48
	}
	if c.Seed == 0 {
		c.Seed = planSeed
	}
	return c, nil
}

// familyGen enumerates one design family's specs. The rng drives only
// per-spec evaluation seeds (placement / Monte Carlo variety); family
// membership itself is a fixed enumeration so the family's identity is
// stable across corpus sizes.
type familyGen struct {
	// weight is the family's share of a mixed corpus.
	weight float64
	gen    func(r *rand.Rand) []jobs.Spec
}

// corpusFamilies are the parameterized design families the generator
// knows. Mirrors the scenario axes of the paper model: adder
// architecture and width (section 6 library richness shows up as the
// methodology rotation), datapath slices and pipeline depth (section 3),
// depth sweeps under workload CPI models (section 4), the full factor
// ladder, and a cache-cold fault/churn campaign (distinct eval seeds,
// so every request is a distinct content address).
var corpusFamilies = map[string]familyGen{
	"adders": {weight: 0.30, gen: func(r *rand.Rand) []jobs.Spec {
		var out []jobs.Spec
		meths := []string{"typical-asic", "best-practice-asic", "full-custom"}
		for _, name := range []string{"rca", "cla", "csel", "ks"} {
			for wi, w := range []int{8, 16, 32, 64} {
				out = append(out, jobs.Spec{
					Kind:        jobs.KindEvaluate,
					Design:      jobs.DesignSpec{Name: name, Width: w},
					Methodology: jobs.MethSpec{Base: meths[wi%len(meths)]},
					Seed:        r.Int63n(1 << 30),
				})
			}
		}
		return out
	}},
	"muxpaths": {weight: 0.15, gen: func(r *rand.Rand) []jobs.Spec {
		var out []jobs.Spec
		add := func(name string, widths ...int) {
			for _, w := range widths {
				out = append(out, jobs.Spec{
					Kind:        jobs.KindEvaluate,
					Design:      jobs.DesignSpec{Name: name, Width: w},
					Methodology: jobs.MethSpec{Base: "typical-asic"},
					Seed:        r.Int63n(1 << 30),
				})
			}
		}
		add("shifter", 16, 32, 64)
		add("alu", 8, 16, 32)
		add("mult", 4, 8, 12)
		add("wallace", 4, 8, 12)
		return out
	}},
	// Only combinational designs appear here: the evaluate flow pipelines
	// the netlist itself, and refuses designs that already carry registers
	// (which rules out "chain" — it is a pre-registered pipeline).
	"datapaths": {weight: 0.20, gen: func(r *rand.Rand) []jobs.Spec {
		var out []jobs.Spec
		for _, base := range []string{"typical-asic", "best-practice-asic"} {
			for _, w := range []int{8, 16, 32} {
				for _, d := range []int{2, 4, 8} {
					out = append(out, jobs.Spec{
						Kind:        jobs.KindEvaluate,
						Design:      jobs.DesignSpec{Name: "datapath", Width: w, Depth: d},
						Methodology: jobs.MethSpec{Base: base},
						Seed:        r.Int63n(1 << 30),
					})
				}
			}
		}
		return out
	}},
	"sweeps": {weight: 0.20, gen: func(r *rand.Rand) []jobs.Spec {
		var out []jobs.Spec
		for _, wl := range []string{"dsp", "integer", "bus", "flat"} {
			for _, ms := range []int{6, 10, 16} {
				out = append(out, jobs.Spec{
					Kind:        jobs.KindSweep,
					Design:      jobs.DesignSpec{Name: "datapath", Width: 16, Depth: 4},
					Methodology: jobs.MethSpec{Base: "typical-asic"},
					MaxStages:   ms,
					Workload:    wl,
					Seed:        r.Int63n(1 << 30),
				})
			}
		}
		return out
	}},
	"ladders": {weight: 0.05, gen: func(r *rand.Rand) []jobs.Spec {
		var out []jobs.Spec
		for _, d := range []jobs.DesignSpec{
			{Name: "datapath", Width: 16, Depth: 4},
			{Name: "alu", Width: 16},
			{Name: "cla", Width: 32},
		} {
			out = append(out, jobs.Spec{
				Kind:   jobs.KindLadder,
				Design: d,
				Seed:   r.Int63n(1 << 30),
			})
		}
		return out
	}},
	"faultmix": {weight: 0.10, gen: func(r *rand.Rand) []jobs.Spec {
		// Every spec gets its own seed, so every request is a distinct
		// content address: the cache-cold campaign that keeps the
		// workers honest while the other families rewarm the cache.
		var out []jobs.Spec
		designs := []jobs.DesignSpec{
			{Name: "rca", Width: 16}, {Name: "cla", Width: 16},
			{Name: "alu", Width: 8}, {Name: "datapath", Width: 8, Depth: 2},
		}
		for i := 0; i < 12; i++ {
			out = append(out, jobs.Spec{
				Kind:        jobs.KindEvaluate,
				Design:      designs[i%len(designs)],
				Methodology: jobs.MethSpec{Base: "typical-asic"},
				Seed:        1 + r.Int63n(1<<30),
			})
		}
		return out
	}},
}

// familyOrder fixes the iteration order of the mixed corpus (maps do
// not), so membership is a pure function of the corpus seed.
var familyOrder = []string{"adders", "muxpaths", "datapaths", "sweeps", "ladders", "faultmix"}

// BuildCorpus generates the corpus the spec names. Every returned spec
// is canonical (Canon applied), weights are normalized to sum to 1, and
// the whole construction is a pure function of the canonical spec —
// same spec, byte-identical corpus.
func BuildCorpus(cs CorpusSpec) (*Corpus, error) {
	c, err := cs.canon(cs.Seed)
	if err != nil {
		return nil, err
	}
	if c.Seed == 0 {
		c.Seed = 1 // a corpus built standalone with no seed anywhere
	}
	r := rand.New(rand.NewSource(c.Seed))
	var items []Item
	families := familyOrder
	if c.Family != "mixed" {
		families = []string{c.Family}
	}
	for _, name := range families {
		fam := corpusFamilies[name]
		specs := fam.gen(r)
		w := fam.weight
		if c.Family != "mixed" {
			w = 1
		}
		per := w / float64(len(specs))
		for _, s := range specs {
			canon, err := s.Canon()
			if err != nil {
				return nil, fmt.Errorf("loadgen: family %s generated an invalid spec: %w", name, err)
			}
			items = append(items, Item{Family: name, Weight: per, Spec: canon})
		}
	}
	if len(items) > c.Size {
		// Seeded sample without replacement: shuffle, keep the first
		// Size, then sort by family and content address so the encoding
		// is stable and diffs group by family.
		r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
		items = items[:c.Size]
		sort.Slice(items, func(i, j int) bool {
			if items[i].Family != items[j].Family {
				return items[i].Family < items[j].Family
			}
			return items[i].Spec.Hash() < items[j].Spec.Hash()
		})
	}
	// Normalize the surviving weights to sum to 1.
	total := 0.0
	for _, it := range items {
		total += it.Weight
	}
	for i := range items {
		items[i].Weight /= total
	}
	out := &Corpus{Spec: c, Items: items}
	out.buildCum()
	return out, nil
}

func (c *Corpus) buildCum() {
	c.cum = make([]float64, len(c.Items))
	sum := 0.0
	for i, it := range c.Items {
		sum += it.Weight
		c.cum[i] = sum
	}
}

// pick draws one weighted item index from r.
func (c *Corpus) pick(r *rand.Rand) int {
	u := r.Float64() * c.cum[len(c.cum)-1]
	for i, b := range c.cum {
		if u < b {
			return i
		}
	}
	return len(c.cum) - 1
}

// Canonical renders the corpus as deterministic JSON bytes — the
// artifact two same-seed runs must reproduce byte for byte.
func (c *Corpus) Canonical() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: corpus not marshalable: %w", err)
	}
	return append(b, '\n'), nil
}
