package loadgen

import (
	"bytes"
	"fmt"
	"testing"
)

// TestScheduleByteIdentical is the replay guarantee: the same plan seed
// must produce byte-identical schedule encodings, for every arrival
// process, across the repo's standard seed matrix.
func TestScheduleByteIdentical(t *testing.T) {
	for _, proc := range []string{ProcPoisson, ProcBurst, ProcRamp, ProcClosed} {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", proc, seed), func(t *testing.T) {
				plan := Plan{
					Seed:    seed,
					Arrival: ArrivalSpec{Process: proc, Rate: 200, DurationSec: 2, Requests: 64},
					Corpus:  CorpusSpec{Family: "mixed", Size: 16},
				}
				build := func() []byte {
					c, err := BuildCorpus(mustCanon(t, plan).Corpus)
					if err != nil {
						t.Fatal(err)
					}
					s, err := BuildSchedule(plan, c)
					if err != nil {
						t.Fatal(err)
					}
					b, err := s.Canonical()
					if err != nil {
						t.Fatal(err)
					}
					return b
				}
				a, b := build(), build()
				if !bytes.Equal(a, b) {
					t.Fatalf("same seed produced different schedules (%d vs %d bytes)", len(a), len(b))
				}
				if len(a) == 0 {
					t.Fatal("empty schedule encoding")
				}
			})
		}
	}
}

// TestScheduleSeedSensitivity: different seeds must actually change the
// schedule — a constant function is trivially deterministic.
func TestScheduleSeedSensitivity(t *testing.T) {
	build := func(seed int64) []byte {
		plan := Plan{
			Seed:    seed,
			Arrival: ArrivalSpec{Process: ProcPoisson, Rate: 200, DurationSec: 2},
			Corpus:  CorpusSpec{Family: "adders", Size: 8},
		}
		c, err := BuildCorpus(mustCanon(t, plan).Corpus)
		if err != nil {
			t.Fatal(err)
		}
		s, err := BuildSchedule(plan, c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if bytes.Equal(build(1), build(2)) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestCorpusByteIdentical: corpus generation is itself reproducible,
// and every generated spec is canonical with normalized weights.
func TestCorpusByteIdentical(t *testing.T) {
	families := append([]string{"mixed"}, familyOrder...)
	for _, fam := range families {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed%d", fam, seed), func(t *testing.T) {
				spec := CorpusSpec{Family: fam, Size: 24, Seed: seed}
				c1, err := BuildCorpus(spec)
				if err != nil {
					t.Fatal(err)
				}
				c2, err := BuildCorpus(spec)
				if err != nil {
					t.Fatal(err)
				}
				b1, err := c1.Canonical()
				if err != nil {
					t.Fatal(err)
				}
				b2, err := c2.Canonical()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b1, b2) {
					t.Fatalf("same corpus spec produced different corpora")
				}
				if len(c1.Items) == 0 || len(c1.Items) > 24 {
					t.Fatalf("corpus size %d out of bounds (cap 24)", len(c1.Items))
				}
				sum := 0.0
				for i, it := range c1.Items {
					sum += it.Weight
					canon, err := it.Spec.Canon()
					if err != nil {
						t.Fatalf("item %d not canonicalizable: %v", i, err)
					}
					if canon.Hash() != it.Spec.Hash() {
						t.Fatalf("item %d spec not stored canonical", i)
					}
				}
				if sum < 0.999 || sum > 1.001 {
					t.Fatalf("weights sum to %g, want 1", sum)
				}
			})
		}
	}
}

// TestScheduleShapes sanity-checks each process's structure: poisson
// volume near rate x duration, burst shows both phases, ramp thirds
// rise, closed is exactly Requests arrivals at offset zero.
func TestScheduleShapes(t *testing.T) {
	corpus, err := BuildCorpus(CorpusSpec{Family: "adders", Size: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sched := func(a ArrivalSpec) *Schedule {
		s, err := BuildSchedule(Plan{Seed: 42, Arrival: a, Corpus: corpus.Spec}, corpus)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := sched(ArrivalSpec{Process: ProcPoisson, Rate: 500, DurationSec: 4})
	n := len(s.Arrivals)
	if n < 1600 || n > 2400 {
		t.Errorf("poisson at 500/s for 4s produced %d arrivals, want ~2000", n)
	}
	for i := 1; i < n; i++ {
		if s.Arrivals[i].OffsetUS < s.Arrivals[i-1].OffsetUS {
			t.Fatalf("arrival %d not in time order", i)
		}
	}

	s = sched(ArrivalSpec{Process: ProcBurst, Rate: 100, BurstRate: 800, DurationSec: 6})
	phases := map[string]int{}
	for _, a := range s.Arrivals {
		phases[a.Phase]++
	}
	if phases["calm"] == 0 || phases["burst"] == 0 {
		t.Errorf("burst schedule missing a phase: %v", phases)
	}

	s = sched(ArrivalSpec{Process: ProcRamp, Rate: 50, PeakRate: 800, DurationSec: 6})
	phases = map[string]int{}
	for _, a := range s.Arrivals {
		phases[a.Phase]++
	}
	if !(phases["ramp_lo"] < phases["ramp_mid"] && phases["ramp_mid"] < phases["ramp_hi"]) {
		t.Errorf("ramp thirds not increasing: %v", phases)
	}

	s = sched(ArrivalSpec{Process: ProcClosed, Requests: 64, Concurrency: 4})
	if len(s.Arrivals) != 64 {
		t.Errorf("closed schedule has %d arrivals, want 64", len(s.Arrivals))
	}
	for _, a := range s.Arrivals {
		if a.OffsetUS != 0 || a.Phase != "closed" {
			t.Fatalf("closed arrival %+v, want offset 0 phase closed", a)
		}
	}
}

// TestPlanCanonZeroing: knobs a process does not consume must be zeroed
// so they cannot split otherwise-identical plans.
func TestPlanCanonZeroing(t *testing.T) {
	p := Plan{
		Seed: 1,
		Arrival: ArrivalSpec{
			Process: ProcClosed, Rate: 99, BurstRate: 98, PeakRate: 97,
			OnMeanSec: 1, OffMeanSec: 2, Requests: 10, Concurrency: 2,
		},
		Corpus: CorpusSpec{Family: "adders"},
	}
	c := mustCanon(t, p)
	if c.Arrival.Rate != 0 || c.Arrival.BurstRate != 0 || c.Arrival.PeakRate != 0 {
		t.Errorf("closed-loop canon kept open-loop rates: %+v", c.Arrival)
	}
	p2 := p
	p2.Arrival.Rate = 12345 // different junk, same canonical plan
	b1, err := p.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("unconsumed knobs changed the canonical plan")
	}
}

func mustCanon(t *testing.T, p Plan) Plan {
	t.Helper()
	c, err := p.Canon()
	if err != nil {
		t.Fatal(err)
	}
	return c
}
