// Package loadgen is the deterministic traffic model for gapd: seeded
// arrival processes (open-loop Poisson, bursty on/off, diurnal ramp,
// closed-loop fixed concurrency), a reproducible scenario corpus of
// parameterized design families, and an SLO report built from a
// bounded-error streaming histogram. The schedule — which request is
// issued when, carrying which spec — is a pure function of the plan
// seed: the same plan replays byte-for-byte, which is what makes a
// perf claim measured with it falsifiable (see FINDINGS.md).
//
// Only request *timing* touches the wall clock, through the single
// sanctioned seam in clock.go; everything else (arrival offsets, corpus
// membership, item picks) is drawn from explicit rand.New(
// rand.NewSource(seed)) generators and is checked by gaplint's
// determinism analyzer like the core evaluation packages.
package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Plan is the canonical description of one load-generation run: a seed,
// an arrival process, and a scenario corpus. Two equal canonical plans
// produce byte-identical schedules and corpora.
type Plan struct {
	// Seed drives every stochastic choice: arrival gaps, phase changes,
	// corpus membership, and per-arrival item picks.
	Seed int64 `json:"seed"`
	// Arrival selects and parameterizes the arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Corpus selects and parameterizes the scenario corpus.
	Corpus CorpusSpec `json:"corpus"`
}

// Arrival process names.
const (
	ProcPoisson = "poisson" // open-loop, exponential inter-arrival gaps
	ProcBurst   = "burst"   // open-loop, Markov-modulated on/off Poisson
	ProcRamp    = "ramp"    // open-loop, linearly rising rate (diurnal ramp)
	ProcClosed  = "closed"  // closed-loop, fixed concurrency, zero think time
)

// ArrivalSpec parameterizes an arrival process. Zero fields take
// process-appropriate defaults in Canon.
type ArrivalSpec struct {
	// Process is poisson, burst, ramp, or closed.
	Process string `json:"process"`
	// Rate is the mean offered load in requests/second (poisson), the
	// calm-phase rate (burst), or the starting rate (ramp).
	Rate float64 `json:"rate_per_sec,omitempty"`
	// BurstRate is the on-phase rate of the burst process
	// (default 4x Rate).
	BurstRate float64 `json:"burst_rate_per_sec,omitempty"`
	// OnMeanSec / OffMeanSec are the mean durations of the burst and
	// calm phases; actual durations are exponential (the Markov
	// modulation). Defaults 1s and 2s.
	OnMeanSec  float64 `json:"on_mean_sec,omitempty"`
	OffMeanSec float64 `json:"off_mean_sec,omitempty"`
	// PeakRate is the final rate of the ramp (default 4x Rate).
	PeakRate float64 `json:"peak_rate_per_sec,omitempty"`
	// DurationSec bounds the open-loop schedule; for the closed loop it
	// is a wall-clock safety cap on the run (0 = uncapped).
	DurationSec float64 `json:"duration_sec,omitempty"`
	// Concurrency is the closed loop's worker count (default 8).
	Concurrency int `json:"concurrency,omitempty"`
	// Requests is the closed loop's schedule length (default 500).
	Requests int `json:"requests,omitempty"`
}

// Canon validates the plan and fills defaults, mirroring jobs.Spec.Canon:
// the canonical form is what gets hashed into reports and what schedule
// and corpus generation consume, so equal plans cannot drift apart.
func (p Plan) Canon() (Plan, error) {
	c := p
	a := &c.Arrival
	a.Process = strings.ToLower(strings.TrimSpace(a.Process))
	if a.Process == "" {
		a.Process = ProcPoisson
	}
	switch a.Process {
	case ProcPoisson, ProcBurst, ProcRamp, ProcClosed:
	default:
		return c, fmt.Errorf("loadgen: unknown arrival process %q", p.Arrival.Process)
	}
	if a.Rate < 0 || a.BurstRate < 0 || a.PeakRate < 0 {
		return c, fmt.Errorf("loadgen: negative rate")
	}
	if a.DurationSec < 0 || a.OnMeanSec < 0 || a.OffMeanSec < 0 {
		return c, fmt.Errorf("loadgen: negative duration")
	}
	if a.Concurrency < 0 || a.Requests < 0 {
		return c, fmt.Errorf("loadgen: negative closed-loop parameter")
	}
	switch a.Process {
	case ProcClosed:
		if a.Concurrency == 0 {
			a.Concurrency = 8
		}
		if a.Requests == 0 {
			a.Requests = 500
		}
		// The open-loop knobs do not apply; zero them so they cannot
		// split otherwise-identical plans.
		a.Rate, a.BurstRate, a.PeakRate = 0, 0, 0
		a.OnMeanSec, a.OffMeanSec = 0, 0
	default:
		if a.Rate == 0 {
			a.Rate = 50
		}
		if a.DurationSec == 0 {
			a.DurationSec = 10
		}
		a.Concurrency, a.Requests = 0, 0
		switch a.Process {
		case ProcPoisson:
			a.BurstRate, a.PeakRate, a.OnMeanSec, a.OffMeanSec = 0, 0, 0, 0
		case ProcBurst:
			if a.BurstRate == 0 {
				a.BurstRate = 4 * a.Rate
			}
			if a.OnMeanSec == 0 {
				a.OnMeanSec = 1
			}
			if a.OffMeanSec == 0 {
				a.OffMeanSec = 2
			}
			a.PeakRate = 0
		case ProcRamp:
			if a.PeakRate == 0 {
				a.PeakRate = 4 * a.Rate
			}
			a.BurstRate, a.OnMeanSec, a.OffMeanSec = 0, 0, 0
		}
	}
	cc, err := c.Corpus.canon(c.Seed)
	if err != nil {
		return c, err
	}
	c.Corpus = cc
	return c, nil
}

// Canonical renders the canonical plan as deterministic JSON bytes.
func (p Plan) Canonical() ([]byte, error) {
	c, err := p.Canon()
	if err != nil {
		return nil, err
	}
	// encoding/json emits struct fields in declaration order, so the
	// canonical plan has exactly one encoding.
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: plan not marshalable: %w", err)
	}
	return append(b, '\n'), nil
}
