package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ReportSchema versions the JSON report layout; bump it when fields
// change meaning, so BENCH_loadgen_*.json trajectories stay comparable.
const ReportSchema = "gapload/v1"

// Report is the SLO report of one run: what was offered, what was
// served, how fast, and how it failed — overall and sliced per job kind
// and per arrival-process phase. The JSON form is canonical (struct
// order plus sorted map keys), so reports diff cleanly across runs.
type Report struct {
	Schema string `json:"schema"`
	// GeneratedAt is stamped by cmd/gapload after the run (the library
	// leaves it empty: report *content* is measurement, the timestamp
	// is provenance).
	GeneratedAt string `json:"generated_at,omitempty"`
	// Plan is the canonical plan that drove the run.
	Plan Plan `json:"plan"`
	// Target identifies what was measured: URL, build, uptime, nodes.
	Target TargetInfo `json:"target"`

	Requests RequestCounts     `json:"requests"`
	Latency  LatencySummary    `json:"latency_ms"`
	PerKind  map[string]*Slice `json:"per_kind"`
	PerPhase map[string]*Slice `json:"per_phase"`
	// Errors breaks terminal failures down by taxonomy class: shed,
	// spec, unavailable, timeout, transport, http_NNN, canceled.
	Errors map[string]int64 `json:"errors,omitempty"`
}

// TargetInfo stamps the report with the server under test, read from
// its /metrics (build_info, uptime_seconds) and /v1/cluster endpoints —
// a number without the build that produced it is not evidence.
type TargetInfo struct {
	URL           string         `json:"url"`
	Build         map[string]any `json:"build_info,omitempty"`
	UptimeSeconds float64        `json:"uptime_seconds,omitempty"`
	Nodes         int            `json:"nodes,omitempty"`
	// Membership records how the measured cluster tracked its members
	// ("static" or "gossip"); Nodes under gossip counts the routable
	// members of the live view at measurement time.
	Membership string `json:"membership,omitempty"`
	// StoreMode records the target's result-store tier: "disk" when a
	// content-addressed store backs the RAM cache, "ram" otherwise. A
	// throughput number against a disk-tier server is a different
	// experiment from a RAM-only one — the hit path includes CRC and
	// digest verification per read.
	StoreMode string `json:"store_mode,omitempty"`
	// StoreSegmentBytes / StoreMaxBytes are the measured store's
	// geometry (rolling-segment size and live-byte budget; 0 = unlimited
	// budget), zero when StoreMode is "ram".
	StoreSegmentBytes int64 `json:"store_segment_bytes,omitempty"`
	StoreMaxBytes     int64 `json:"store_max_bytes,omitempty"`
}

// RequestCounts are the run's volume numbers.
type RequestCounts struct {
	// Scheduled arrivals; every one terminates as completed, failed, or
	// skipped (run ended first) — Validate enforces the partition.
	Scheduled int64 `json:"scheduled"`
	// Issued HTTP requests, including closed-loop 429 retries.
	Issued    int64 `json:"issued"`
	Completed int64 `json:"completed"`
	// Cached counts completed responses served from the result cache.
	Cached  int64 `json:"cached"`
	Failed  int64 `json:"failed"`
	Skipped int64 `json:"skipped"`
	// Shed counts 429 responses observed (the closed loop retries
	// them, so Shed can exceed the shed-terminal failures in Errors).
	Shed int64 `json:"shed"`

	DurationSec float64 `json:"duration_sec"`
	// OfferedRPS is scheduled arrivals over the measured duration;
	// GoodputRPS is completed responses over the same window.
	OfferedRPS float64 `json:"offered_rps"`
	GoodputRPS float64 `json:"goodput_rps"`
	// ShedRate is shed responses over issued requests.
	ShedRate float64 `json:"shed_rate"`
}

// LatencySummary is the bounded-error quantile readout of one
// histogram, in milliseconds. Quantile error ≤ 1/32 of the true value
// (see LatencyHist).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean"`
	P50MS  float64 `json:"p50"`
	P95MS  float64 `json:"p95"`
	P99MS  float64 `json:"p99"`
	P999MS float64 `json:"p999"`
	MaxMS  float64 `json:"max"`
}

// Slice is one per-kind or per-phase cut: counts plus latency over the
// completed requests in the slice.
type Slice struct {
	Completed int64          `json:"completed"`
	Failed    int64          `json:"failed"`
	Shed      int64          `json:"shed"`
	Latency   LatencySummary `json:"latency_ms"`
}

// summarize reads a histogram into the millisecond summary.
func summarize(h *LatencyHist) LatencySummary {
	if h == nil || h.Count() == 0 {
		return LatencySummary{}
	}
	qs := h.Quantiles(0.50, 0.95, 0.99, 0.999)
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return LatencySummary{
		Count:  h.Count(),
		MeanMS: h.Mean() / 1e6,
		P50MS:  ms(qs[0]),
		P95MS:  ms(qs[1]),
		P99MS:  ms(qs[2]),
		P999MS: ms(qs[3]),
		MaxMS:  ms(h.Max()),
	}
}

// Validate checks the report's internal invariants — the contract
// `make load-smoke` asserts and every committed BENCH_loadgen_*.json
// must satisfy.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("loadgen: report schema %q, want %q", r.Schema, ReportSchema)
	}
	c := r.Requests
	if c.Scheduled != c.Completed+c.Failed+c.Skipped {
		return fmt.Errorf("loadgen: scheduled %d != completed %d + failed %d + skipped %d",
			c.Scheduled, c.Completed, c.Failed, c.Skipped)
	}
	if c.Issued < c.Completed+c.Failed {
		return fmt.Errorf("loadgen: issued %d below completed %d + failed %d (every terminal outcome was issued at least once)",
			c.Issued, c.Completed, c.Failed)
	}
	if c.Cached > c.Completed {
		return fmt.Errorf("loadgen: cached %d exceeds completed %d", c.Cached, c.Completed)
	}
	if r.Latency.Count != c.Completed {
		return fmt.Errorf("loadgen: latency count %d != completed %d", r.Latency.Count, c.Completed)
	}
	var kindDone, kindFail int64
	for _, s := range r.PerKind {
		kindDone += s.Completed
		kindFail += s.Failed
	}
	if kindDone != c.Completed || kindFail != c.Failed {
		return fmt.Errorf("loadgen: per-kind slices (%d done, %d failed) do not sum to totals (%d, %d)",
			kindDone, kindFail, c.Completed, c.Failed)
	}
	var phaseDone int64
	for _, s := range r.PerPhase {
		phaseDone += s.Completed
	}
	if phaseDone != c.Completed {
		return fmt.Errorf("loadgen: per-phase slices (%d done) do not sum to completed %d", phaseDone, c.Completed)
	}
	var errSum int64
	for _, n := range r.Errors {
		errSum += n
	}
	if errSum != c.Failed {
		return fmt.Errorf("loadgen: error classes sum to %d, failed is %d", errSum, c.Failed)
	}
	for name, s := range map[string]LatencySummary{"overall": r.Latency} {
		if err := monotone(name, s); err != nil {
			return err
		}
	}
	for k, s := range r.PerKind {
		if err := monotone("kind "+k, s.Latency); err != nil {
			return err
		}
	}
	for k, s := range r.PerPhase {
		if err := monotone("phase "+k, s.Latency); err != nil {
			return err
		}
	}
	return nil
}

func monotone(name string, s LatencySummary) error {
	if s.P50MS > s.P95MS || s.P95MS > s.P99MS || s.P99MS > s.P999MS {
		return fmt.Errorf("loadgen: %s quantiles not monotone: p50 %.3f p95 %.3f p99 %.3f p999 %.3f",
			name, s.P50MS, s.P95MS, s.P99MS, s.P999MS)
	}
	// The max is exact while quantiles are bucket midpoints, so allow
	// the bounded bucket error before calling it inconsistent.
	if s.Count > 0 && s.P999MS > s.MaxMS*(1+1.0/16) {
		return fmt.Errorf("loadgen: %s p999 %.3f exceeds max %.3f beyond bucket error", name, s.P999MS, s.MaxMS)
	}
	return nil
}

// JSON renders the report as the canonical BENCH_loadgen_*.json bytes.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: report not marshalable: %w", err)
	}
	return append(b, '\n'), nil
}

// Table renders the human-readable run summary.
func (r *Report) Table() string {
	var b strings.Builder
	c := r.Requests
	fmt.Fprintf(&b, "gapload %s  seed=%d  arrival=%s  corpus=%s/%d  target=%s",
		r.Schema, r.Plan.Seed, r.Plan.Arrival.Process, r.Plan.Corpus.Family, r.Plan.Corpus.Size, r.Target.URL)
	if r.Target.Nodes > 1 {
		fmt.Fprintf(&b, " (%d nodes)", r.Target.Nodes)
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "requests   scheduled %d   issued %d   completed %d (%d cached)   failed %d   skipped %d\n",
		c.Scheduled, c.Issued, c.Completed, c.Cached, c.Failed, c.Skipped)
	fmt.Fprintf(&b, "load       duration %.2fs   offered %.1f req/s   goodput %.1f req/s   shed %d (rate %.3f)\n",
		c.DurationSec, c.OfferedRPS, c.GoodputRPS, c.Shed, c.ShedRate)
	fmt.Fprintf(&b, "latency    p50 %.2fms   p95 %.2fms   p99 %.2fms   p999 %.2fms   max %.2fms   mean %.2fms\n",
		r.Latency.P50MS, r.Latency.P95MS, r.Latency.P99MS, r.Latency.P999MS, r.Latency.MaxMS, r.Latency.MeanMS)
	writeSlices := func(title string, m map[string]*Slice) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%-10s %10s %8s %6s %10s %10s %10s %10s\n",
			title, "completed", "failed", "shed", "p50 ms", "p95 ms", "p99 ms", "p999 ms")
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := m[k]
			fmt.Fprintf(&b, "%-10s %10d %8d %6d %10.2f %10.2f %10.2f %10.2f\n",
				k, s.Completed, s.Failed, s.Shed,
				s.Latency.P50MS, s.Latency.P95MS, s.Latency.P99MS, s.Latency.P999MS)
		}
	}
	writeSlices("kind", r.PerKind)
	writeSlices("phase", r.PerPhase)
	if len(r.Errors) > 0 {
		b.WriteString("\nerrors    ")
		keys := make([]string, 0, len(r.Errors))
		for k := range r.Errors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, r.Errors[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}
