package loadgen

import (
	"math/bits"
	"sync"
)

// LatencyHist is an HDR-style log-linear streaming histogram over
// non-negative int64 samples (we record nanoseconds). No samples are
// retained: each value lands in one of a fixed set of buckets whose
// width grows with magnitude, so memory is constant and the relative
// quantile error is bounded.
//
// Layout: values below 2^(subBits+1) get exact unit buckets; above
// that, each power-of-two octave is split into 2^subBits linear
// sub-buckets. A bucket holding value v therefore spans at most
// v/2^subBits, and any quantile read from a bucket's midpoint is within
// a relative error of 2^-(subBits+1) — with subBits = 5, at most
// 1/64 ≈ 1.6% (the documented bound tests assert is ≤ 1/32 end to end,
// covering the midpoint-vs-edge worst case).
type LatencyHist struct {
	mu     sync.Mutex
	counts []int64
	count  int64
	sum    int64
	max    int64
}

// subBits sets the per-octave resolution: 2^5 = 32 sub-buckets.
const subBits = 5

// histBuckets covers int64 up to 2^62: 64 exact unit buckets plus
// (62-subBits) octaves of 32 sub-buckets each.
const histBuckets = (1 << (subBits + 1)) + (62-subBits)*(1<<subBits)

// NewLatencyHist creates an empty histogram.
func NewLatencyHist() *LatencyHist {
	return &LatencyHist{counts: make([]int64, histBuckets)}
}

// bucketIndex maps a value to its bucket. Exact for v < 64; log-linear
// above.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 1<<(subBits+1) {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), ≥ subBits+1
	shift := uint(exp - subBits)
	// v>>shift is in [2^subBits, 2^(subBits+1)); each octave past the
	// exact region contributes 2^subBits buckets.
	return (exp-subBits)*(1<<subBits) + int(v>>shift)
}

// bucketLow returns the smallest value mapping to bucket i (the inverse
// of bucketIndex on bucket lower bounds).
func bucketLow(i int) int64 {
	if i < 1<<(subBits+1) {
		return int64(i)
	}
	// Invert bucketIndex: for shift k = exp-subBits ≥ 1, indices
	// [(k+1)*2^subBits, (k+2)*2^subBits) hold m = v>>k in
	// [2^subBits, 2^(subBits+1)).
	k := i/(1<<subBits) - 1
	m := int64(i - k*(1<<subBits))
	return m << uint(k)
}

// bucketMid returns the midpoint of bucket i, the value quantile reads
// report.
func bucketMid(i int) int64 {
	lo := bucketLow(i)
	var hi int64
	if i+1 < histBuckets {
		hi = bucketLow(i + 1)
	} else {
		hi = lo
	}
	return lo + (hi-lo)/2
}

// Observe records one sample.
func (h *LatencyHist) Observe(v int64) {
	i := bucketIndex(v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *LatencyHist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Max returns the largest recorded sample (exact, not bucketed).
func (h *LatencyHist) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the exact arithmetic mean of the recorded samples.
func (h *LatencyHist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the midpoint of
// the bucket holding the ceil(q*count)-th smallest sample. Relative
// error is bounded by the bucket layout (≤ 1/32 of the true value).
func (h *LatencyHist) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return h.max
}

// Quantiles returns the values at several quantiles (report-time
// convenience; each read locks briefly).
func (h *LatencyHist) Quantiles(qs ...float64) []int64 {
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}
