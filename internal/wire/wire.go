// Package wire models on-chip interconnect the way the BACPAC calculator
// the paper used did: distributed-RC (Elmore) delay for point-to-point
// wires, optimal repeater insertion for long global wires, and wire
// widening to trade capacitance for resistance. It also provides the
// pre-placement statistical wire-load model synthesis uses.
//
// Units: lengths in millimeters, electrical values from the process
// (ohms, fF), results converted to tau so they compose with gate delays.
package wire

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// elmoreFactor is the 50%-swing step-response factor ln 2.
const elmoreFactor = 0.69

// Model evaluates wire delays in one process.
type Model struct {
	P units.Process
}

// NewModel builds a wire model for the process.
func NewModel(p units.Process) Model { return Model{P: p} }

// psToTau converts picoseconds to tau in the model's process.
func (m Model) psToTau(ps float64) units.Tau {
	return units.FromFO4(ps / m.P.FO4Picoseconds())
}

// CapOfLength returns the capacitance of a wire of the given length and
// width multiple, in normalized units. Widening trades area capacitance
// up but, at these geometries, fringe and coupling
// dominate, so doubling width costs only ~15% more capacitance:
// C(w) ~ C0*(0.85 + 0.15*w).
func (m Model) CapOfLength(mm, widthMult float64) units.Cap {
	cf := m.P.Metal.CfFPerMm * mm * (0.85 + 0.15*widthMult)
	return units.Cap(cf / m.P.CinFF)
}

// resOfLength returns wire resistance in ohms.
func (m Model) resOfLength(mm, widthMult float64) float64 {
	return m.P.Metal.ROhmPerMm * mm / widthMult
}

// UnbufferedDelay returns the Elmore delay of a driver of the given drive
// strength pushing a signal down a wire of length mm (at widthMult times
// minimum width) into loadCap, in tau.
//
//	t = ln2 * [ Rd*(Cw + CL) + Rw*(Cw/2 + CL) ]
func (m Model) UnbufferedDelay(mm, widthMult, drive float64, load units.Cap) units.Tau {
	if mm < 0 {
		mm = 0
	}
	rd := m.P.RdrvOhm / drive
	cw := m.P.Metal.CfFPerMm * mm * (0.85 + 0.15*widthMult)
	rw := m.resOfLength(mm, widthMult)
	cl := float64(load) * m.P.CinFF
	ps := elmoreFactor * (rd*(cw+cl) + rw*(cw/2+cl)) / 1000 // ohm*fF = 1e-3 ps
	return m.psToTau(ps)
}

// Repeaters describes a repeater-insertion solution for one wire.
type Repeaters struct {
	Count int     // repeaters inserted along the wire
	Size  float64 // drive strength of each repeater (and of the driver)
	// Delay is the end-to-end delay in tau, including the driver stage.
	Delay units.Tau
	// WidthMult is the wire width multiple used.
	WidthMult float64
}

func (r Repeaters) String() string {
	return fmt.Sprintf("%d repeaters x X%.0f (w=%.0fx): %.1f FO4", r.Count, r.Size, r.WidthMult, r.Delay.FO4())
}

// segmentDelay returns the delay of one repeated segment: a size-h driver,
// a wire of length segMM, and a size-h repeater load.
func (m Model) segmentDelay(segMM, widthMult, h float64) float64 {
	rd := m.P.RdrvOhm / h
	cw := m.P.Metal.CfFPerMm * segMM * (0.85 + 0.15*widthMult)
	rw := m.resOfLength(segMM, widthMult)
	cl := h * m.P.CinFF // next repeater's input
	// Add the repeater's own parasitic as one tau worth of output cap.
	cpar := h * m.P.CinFF * 0.5
	return elmoreFactor * (rd*(cw+cl+cpar) + rw*(cw/2+cl)) / 1000
}

// repeaterSizes is the ladder searched during insertion.
var repeaterSizes = []float64{1, 2, 4, 8, 16, 32, 64, 96, 128}

// OptimalRepeaters finds the repeater count and size minimizing the delay
// of a wire of the given length at the given width multiple, searching
// counts 0..maxRep and the size ladder. The final load is the given
// receiver capacitance.
func (m Model) OptimalRepeaters(mm, widthMult float64, load units.Cap) Repeaters {
	const maxRep = 64
	best := Repeaters{Count: 0, Size: 1, WidthMult: widthMult}
	bestPS := math.Inf(1)
	for _, h := range repeaterSizes {
		for k := 0; k <= maxRep; k++ {
			seg := mm / float64(k+1)
			// k+1 segments; the last one drives the receiver load
			// instead of another repeater.
			ps := float64(k) * m.segmentDelay(seg, widthMult, h)
			rd := m.P.RdrvOhm / h
			cw := m.P.Metal.CfFPerMm * seg * (0.85 + 0.15*widthMult)
			rw := m.resOfLength(seg, widthMult)
			cl := float64(load) * m.P.CinFF
			ps += elmoreFactor * (rd*(cw+cl) + rw*(cw/2+cl)) / 1000
			if ps < bestPS {
				bestPS = ps
				best = Repeaters{Count: k, Size: h, WidthMult: widthMult, Delay: m.psToTau(ps)}
			}
		}
	}
	return best
}

// RepeatersForDriver finds the best repeater solution for a wire whose
// first segment is driven by the actual on-path driver (of the given
// drive strength), not an idealized repeater: the driver pushes the first
// segment plus the first repeater's input, k-1 interior segments run
// repeater-to-repeater, and the last repeater drives the receiver load.
// Count 0 means the raw wire wins.
func (m Model) RepeatersForDriver(drive, mm float64, load units.Cap) Repeaters {
	raw := m.UnbufferedDelay(mm, 1, drive, load)
	best := Repeaters{Count: 0, Size: drive, WidthMult: 1, Delay: raw}
	if mm <= 0 {
		return best
	}
	const maxRep = 32
	rdReal := m.P.RdrvOhm / drive
	cl := float64(load) * m.P.CinFF
	for _, h := range repeaterSizes {
		ch := h * m.P.CinFF
		rdRep := m.P.RdrvOhm / h
		for k := 1; k <= maxRep; k++ {
			seg := mm / float64(k+1)
			cw := m.P.Metal.CfFPerMm * seg
			rw := m.resOfLength(seg, 1)
			// Driver stage into the first repeater.
			ps := elmoreFactor * (rdReal*(cw+ch) + rw*(cw/2+ch)) / 1000
			// Interior repeater-to-repeater segments.
			ps += float64(k-1) * m.segmentDelay(seg, 1, h)
			// Final repeater into the receiver.
			ps += elmoreFactor * (rdRep*(cw+cl+ch*0.5) + rw*(cw/2+cl)) / 1000
			if d := m.psToTau(ps); d < best.Delay {
				best = Repeaters{Count: k, Size: h, WidthMult: 1, Delay: d}
			}
		}
	}
	return best
}

// BestWireDelay additionally searches wire widths up to the process
// maximum, returning the overall best repeated solution.
func (m Model) BestWireDelay(mm float64, load units.Cap) Repeaters {
	best := m.OptimalRepeaters(mm, 1, load)
	for w := 2.0; w <= m.P.Metal.MaxWidthMult; w *= 2 {
		if r := m.OptimalRepeaters(mm, w, load); r.Delay < best.Delay {
			best = r
		}
	}
	return best
}

// LoadModel is the statistical pre-layout wire-load model: estimated wire
// capacitance as a function of fanout, for a block of the given area.
// Synthesis uses it to pick drive strengths before placement exists;
// the paper (section 6.2) notes this estimate "will differ from that in
// the final layout", which is why post-layout resizing matters.
type LoadModel struct {
	M Model
	// BlockAreaMM2 is the area of the block being synthesized;
	// estimated net length scales with its half-perimeter.
	BlockAreaMM2 float64
}

// NetCap estimates wire capacitance for a net with the given fanout.
func (wl LoadModel) NetCap(fanout int) units.Cap {
	if fanout < 1 {
		fanout = 1
	}
	side := math.Sqrt(wl.BlockAreaMM2)
	// Rent-style estimate: average net spans a fraction of the block
	// that grows slowly with fanout.
	mm := side * 0.1 * math.Sqrt(float64(fanout))
	return wl.M.CapOfLength(mm, 1)
}
