package wire

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func model() Model { return NewModel(units.ASIC025) }

func TestUnbufferedDelayGrowsQuadratically(t *testing.T) {
	m := model()
	d1 := m.UnbufferedDelay(1, 1, 4, 4)
	d2 := m.UnbufferedDelay(2, 1, 4, 4)
	// With a weak driver the wire looks capacitive: doubling length
	// about doubles delay.
	if r := float64(d2) / float64(d1); r < 1.9 {
		t.Fatalf("2mm/1mm ratio %.2f, want near >2 for RC wire", r)
	}
	// With a strong driver (Rd << Rw) the distributed term dominates and
	// delay grows superlinearly toward quadratic.
	d5 := m.UnbufferedDelay(5, 1, 64, 4)
	d10 := m.UnbufferedDelay(10, 1, 64, 4)
	if r := float64(d10) / float64(d5); r < 2.8 {
		t.Fatalf("10mm/5mm strong-driver ratio %.2f, want approaching 4 (quadratic regime)", r)
	}
}

func TestRepeatersLinearizeLongWires(t *testing.T) {
	m := model()
	raw := m.UnbufferedDelay(10, 1, 4, 4)
	rep := m.OptimalRepeaters(10, 1, 4)
	if rep.Delay >= raw {
		t.Fatalf("repeaters (%.1f FO4) must beat raw wire (%.1f FO4)", rep.Delay.FO4(), raw.FO4())
	}
	if rep.Count == 0 {
		t.Fatal("a 10mm global wire needs repeaters")
	}
	// Repeated delay should grow ~linearly: 10mm should be ~2x 5mm, not 4x.
	r5 := m.OptimalRepeaters(5, 1, 4)
	ratio := float64(rep.Delay) / float64(r5.Delay)
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("10mm/5mm repeated ratio = %.2f, want ~2 (linear)", ratio)
	}
}

func TestShortWireNeedsNoRepeaters(t *testing.T) {
	m := model()
	r := m.OptimalRepeaters(0.05, 1, 4)
	if r.Count != 0 {
		t.Fatalf("50um wire got %d repeaters", r.Count)
	}
}

func TestWideningHelpsLongWires(t *testing.T) {
	m := model()
	narrow := m.OptimalRepeaters(10, 1, 4)
	best := m.BestWireDelay(10, 4)
	if best.Delay > narrow.Delay {
		t.Fatal("width search must never be worse than minimum width")
	}
	if best.WidthMult <= 1 {
		t.Fatalf("10mm wire should prefer widening, got %.0fx", best.WidthMult)
	}
}

func TestCapOfLengthScalesLinearly(t *testing.T) {
	m := model()
	f := func(seed uint8) bool {
		mm := 0.1 + float64(seed%50)/10
		c1 := float64(m.CapOfLength(mm, 1))
		c2 := float64(m.CapOfLength(2*mm, 1))
		return math.Abs(c2-2*c1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDelayMonotoneInLength(t *testing.T) {
	m := model()
	f := func(a, b uint8) bool {
		la, lb := float64(a%100)/10, float64(b%100)/10
		da := m.UnbufferedDelay(la, 1, 2, 4)
		db := m.UnbufferedDelay(lb, 1, 2, 4)
		if la <= lb {
			return da <= db
		}
		return db <= da
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCrossDieWireIsManyFO4(t *testing.T) {
	// The paper's floorplanning study: a path crossing a 100mm^2 die
	// (10mm) costs many FO4 even with optimal repeaters — this is the
	// wire-delay budget careful floorplanning eliminates.
	m := model()
	r := m.BestWireDelay(10, 4)
	if f := r.Delay.FO4(); f < 3 || f > 30 {
		t.Fatalf("10mm repeated wire = %.1f FO4, want single-digit-to-20s", f)
	}
	// And a 0.5mm local wire should be well under 1 FO4.
	local := m.BestWireDelay(0.5, 4)
	if local.Delay.FO4() > 1.5 {
		t.Fatalf("0.5mm local wire = %.2f FO4, want < 1.5", local.Delay.FO4())
	}
}

func TestLoadModelGrowsWithFanoutAndArea(t *testing.T) {
	m := model()
	small := LoadModel{M: m, BlockAreaMM2: 1}
	big := LoadModel{M: m, BlockAreaMM2: 100}
	if small.NetCap(2) >= big.NetCap(2) {
		t.Fatal("bigger blocks must estimate more wire cap")
	}
	if small.NetCap(1) > small.NetCap(8) {
		t.Fatal("higher fanout must estimate more wire cap")
	}
	if small.NetCap(0) != small.NetCap(1) {
		t.Fatal("fanout clamps at 1")
	}
}

func TestNegativeLengthClamps(t *testing.T) {
	m := model()
	if d := m.UnbufferedDelay(-3, 1, 1, 1); d != m.UnbufferedDelay(0, 1, 1, 1) {
		t.Fatal("negative length should clamp to zero")
	}
}

func TestRepeatersString(t *testing.T) {
	if model().OptimalRepeaters(5, 1, 4).String() == "" {
		t.Fatal("empty repeater description")
	}
}

func TestRepeatersForDriverDirect(t *testing.T) {
	m := model()
	// A long wire behind a weak driver: the driver-aware solver should
	// insert repeaters and beat the raw wire.
	raw := m.UnbufferedDelay(8, 1, 2, 4)
	rep := m.RepeatersForDriver(2, 8, 4)
	if rep.Count < 1 {
		t.Fatalf("8mm wire behind an X2 driver got %d repeaters", rep.Count)
	}
	if rep.Delay >= raw {
		t.Fatalf("repeated delay %.1f FO4 should beat raw %.1f FO4", rep.Delay.FO4(), raw.FO4())
	}
	// A very short wire: raw wins, count 0, delay equals the raw delay.
	short := m.RepeatersForDriver(4, 0.05, 4)
	if short.Count != 0 {
		t.Fatalf("50um wire got %d repeaters", short.Count)
	}
	if short.Delay != m.UnbufferedDelay(0.05, 1, 4, 4) {
		t.Fatal("count-0 solution must equal the raw delay")
	}
	// Zero length is the degenerate raw case.
	if z := m.RepeatersForDriver(4, 0, 4); z.Count != 0 {
		t.Fatal("zero-length wire must not get repeaters")
	}
}

func TestRepeatersForDriverMonotoneInLength(t *testing.T) {
	m := model()
	prev := 0.0
	for _, mm := range []float64{1, 2, 4, 8, 12} {
		d := float64(m.RepeatersForDriver(4, mm, 4).Delay)
		if d < prev {
			t.Fatalf("repeated delay decreased at %.0fmm", mm)
		}
		prev = d
	}
}
