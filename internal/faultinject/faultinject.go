// Package faultinject is a deterministic, seedable fault injector for
// the gapd evaluation stack. It hooks the stage seams of
// core.EvaluateCtx (via core.WithStageHook) and the worker-pool seam in
// internal/jobs, and turns a fixed seed into a reproducible schedule of
// injected failures: typed error returns, panics, artificial latency
// (cooperative and non-cooperative), context-cancellation storms, and
// simulated process kills.
//
// Determinism is the point: a fault decision is a pure function of
// (plan seed, site key), where the site key names a (job, attempt,
// stage) triple. Two runs of the same chaos test with the same seed see
// the same faults at the same places regardless of goroutine
// interleaving, so the suite is reproducible and non-flaky by
// construction.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected marks every error the injector fabricates. The job layer
// classifies anything wrapping it as transient, so injected failures
// exercise exactly the retry path a flaky real dependency would.
var ErrInjected = errors.New("faultinject: injected fault")

// PanicValue is the value injected panics carry, so recover sites (and
// chaos tests) can tell an injected panic from a genuine bug.
type PanicValue struct {
	// Key is the site key that drew the panic.
	Key string
}

func (p PanicValue) String() string { return "faultinject: injected panic at " + p.Key }

// Kind enumerates the faults the injector can produce at a site.
type Kind int

// Fault kinds, in drawing order (see Decide).
const (
	// None: the site proceeds normally.
	None Kind = iota
	// Error: the site returns an error wrapping ErrInjected.
	Error
	// Panic: the site panics with a PanicValue.
	Panic
	// Latency: the site sleeps Plan.Latency, honouring context
	// cancellation (a slow dependency, not a wedged one).
	Latency
	// Stall: the site sleeps Plan.Latency ignoring the context — a
	// wedged evaluation only the pool watchdog can reclaim.
	Stall
	// Cancel: the site reports context.Canceled as if a cancellation
	// storm had swept the job mid-flight.
	Cancel
	// Kill: the pool abandons the job without writing a terminal
	// journal record, exactly as if the process had died between
	// journal accept and done. Only the pool seam honours Kill; stage
	// seams treat it as None.
	Kill
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	case Stall:
		return "stall"
	case Cancel:
		return "cancel"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("faultinject.Kind(%d)", int(k))
}

// Plan fixes the injector's behaviour. Rates are probabilities in
// [0,1], drawn independently per site key in the declared order; they
// are effectively cumulative, so their sum should stay <= 1.
type Plan struct {
	// Seed drives every fault decision. The same seed and site keys
	// reproduce the same fault schedule.
	Seed int64

	ErrorRate   float64
	PanicRate   float64
	LatencyRate float64
	StallRate   float64
	CancelRate  float64
	KillRate    float64

	// Latency is the injected sleep for Latency and Stall faults
	// (default 10ms).
	Latency time.Duration

	// Match restricts injection to site keys containing the substring
	// (e.g. a job kind, a stage name, or a job-hash prefix). Empty
	// matches every site.
	Match string
}

// Injector draws faults deterministically from a Plan and counts what
// it injected. Safe for concurrent use.
type Injector struct {
	plan Plan

	Errors    atomic.Int64
	Panics    atomic.Int64
	Latencies atomic.Int64
	Stalls    atomic.Int64
	Cancels   atomic.Int64
	Kills     atomic.Int64
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	if plan.Latency <= 0 {
		plan.Latency = 10 * time.Millisecond
	}
	return &Injector{plan: plan}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Decide maps a site key to the fault that site draws. Pure: the same
// key always draws the same fault under the same plan.
func (in *Injector) Decide(key string) Kind {
	if in == nil {
		return None
	}
	if in.plan.Match != "" && !strings.Contains(key, in.plan.Match) {
		return None
	}
	u := in.uniform(key)
	for _, step := range []struct {
		rate float64
		kind Kind
	}{
		{in.plan.ErrorRate, Error},
		{in.plan.PanicRate, Panic},
		{in.plan.LatencyRate, Latency},
		{in.plan.StallRate, Stall},
		{in.plan.CancelRate, Cancel},
		{in.plan.KillRate, Kill},
	} {
		if u < step.rate {
			return step.kind
		}
		u -= step.rate
	}
	return None
}

// uniform hashes (seed, key) into [0,1).
func (in *Injector) uniform(key string) float64 {
	h := fnv.New64a()
	var seed [8]byte
	s := uint64(in.plan.Seed)
	for i := range seed {
		seed[i] = byte(s >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(key))
	// FNV alone is too regular over near-identical keys; run the sum
	// through a splitmix64 finalizer before taking 53 bits for the
	// double in [0,1).
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Fire applies the site's fault: it may sleep, return an error wrapping
// ErrInjected or context.Canceled, or panic with a PanicValue. Kill is
// pool-only and reported as None here; use Decide at the pool seam.
func (in *Injector) Fire(ctx context.Context, key string) error {
	switch in.Decide(key) {
	case Error:
		in.Errors.Add(1)
		return fmt.Errorf("%w at %s", ErrInjected, key)
	case Panic:
		in.Panics.Add(1)
		panic(PanicValue{Key: key})
	case Latency:
		in.Latencies.Add(1)
		t := time.NewTimer(in.plan.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	case Stall:
		in.Stalls.Add(1)
		time.Sleep(in.plan.Latency) // deliberately ignores ctx: a wedged worker
	case Cancel:
		in.Cancels.Add(1)
		return fmt.Errorf("injected cancellation storm at %s: %w", key, context.Canceled)
	}
	return nil
}

// StageHook adapts the injector to core.WithStageHook: the site key is
// the attempt key carried in ctx (see WithAttemptKey) joined with the
// stage name, so each (job, attempt, stage) is an independent,
// deterministic fault site.
func (in *Injector) StageHook() func(ctx context.Context, stage string) error {
	return func(ctx context.Context, stage string) error {
		return in.Fire(ctx, AttemptKey(ctx)+"/"+stage)
	}
}

type attemptKeyKey struct{}

// WithAttemptKey stamps the (job, attempt) identity the pool is
// currently running into ctx, for the stage hook's site keys.
func WithAttemptKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, attemptKeyKey{}, key)
}

// AttemptKey extracts the attempt key, or "".
func AttemptKey(ctx context.Context) string {
	key, _ := ctx.Value(attemptKeyKey{}).(string)
	return key
}
