package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDecideDeterministic: the fault schedule is a pure function of
// (seed, key) — the property every chaos test's reproducibility rests on.
func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, ErrorRate: 0.2, PanicRate: 0.1, LatencyRate: 0.1, CancelRate: 0.1}
	a, b := New(plan), New(plan)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job%03d/a0/stage", i)
		if got, want := a.Decide(key), b.Decide(key); got != want {
			t.Fatalf("key %s: %v vs %v across injectors", key, got, want)
		}
		if got, want := a.Decide(key), a.Decide(key); got != want {
			t.Fatalf("key %s: %v then %v on repeat", key, got, want)
		}
	}
	// A different seed must produce a different schedule somewhere.
	c := New(Plan{Seed: 43, ErrorRate: 0.2, PanicRate: 0.1, LatencyRate: 0.1, CancelRate: 0.1})
	same := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("job%03d/a0/stage", i)
		if a.Decide(key) == c.Decide(key) {
			same++
		}
	}
	if same == 500 {
		t.Error("seed 42 and 43 drew identical schedules over 500 keys")
	}
}

// TestDecideRates: over many keys the empirical fault mix approximates
// the plan's rates (loose bounds; the draw is a hash, not a PRNG
// stream, so exactness is not expected).
func TestDecideRates(t *testing.T) {
	in := New(Plan{Seed: 7, ErrorRate: 0.25, PanicRate: 0.25})
	counts := map[Kind]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[in.Decide(fmt.Sprintf("k%d", i))]++
	}
	for kind, want := range map[Kind]float64{Error: 0.25, Panic: 0.25, None: 0.5} {
		frac := float64(counts[kind]) / n
		if frac < want-0.05 || frac > want+0.05 {
			t.Errorf("%v fraction %.3f, want ~%.2f", kind, frac, want)
		}
	}
}

func TestMatchFilter(t *testing.T) {
	in := New(Plan{Seed: 1, ErrorRate: 1, Match: "evaluate"})
	if got := in.Decide("pool/ladder/abc/a0"); got != None {
		t.Errorf("non-matching key drew %v", got)
	}
	if got := in.Decide("pool/evaluate/abc/a0"); got != Error {
		t.Errorf("matching key drew %v", got)
	}
}

func TestFireError(t *testing.T) {
	in := New(Plan{Seed: 1, ErrorRate: 1})
	err := in.Fire(context.Background(), "site")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if in.Errors.Load() != 1 {
		t.Errorf("Errors = %d", in.Errors.Load())
	}
}

func TestFirePanicCarriesValue(t *testing.T) {
	in := New(Plan{Seed: 1, PanicRate: 1})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Key != "site" {
			t.Errorf("recovered %v, want PanicValue{site}", r)
		}
	}()
	_ = in.Fire(context.Background(), "site")
	t.Fatal("Fire did not panic")
}

func TestFireCancelReportsCanceled(t *testing.T) {
	in := New(Plan{Seed: 1, CancelRate: 1})
	err := in.Fire(context.Background(), "site")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFireLatencyHonoursContext: a Latency fault is a slow dependency,
// not a wedged one — cancelling the context cuts the sleep short.
func TestFireLatencyHonoursContext(t *testing.T) {
	in := New(Plan{Seed: 1, LatencyRate: 1, Latency: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	start := time.Now()
	err := in.Fire(ctx, "site")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("Latency fault ignored cancellation")
	}
}

// TestFireStallIgnoresContext: a Stall fault really wedges — it sleeps
// through cancellation, which is what the pool watchdog exists for.
func TestFireStallIgnoresContext(t *testing.T) {
	in := New(Plan{Seed: 1, StallRate: 1, Latency: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := in.Fire(ctx, "site"); err != nil {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("Stall fault returned before its latency elapsed")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if got := in.Decide("anything"); got != None {
		t.Errorf("nil injector drew %v", got)
	}
}

func TestAttemptKeyRoundTrip(t *testing.T) {
	ctx := WithAttemptKey(context.Background(), "abc/a3")
	if got := AttemptKey(ctx); got != "abc/a3" {
		t.Errorf("AttemptKey = %q", got)
	}
	if got := AttemptKey(context.Background()); got != "" {
		t.Errorf("AttemptKey on bare ctx = %q", got)
	}
}
